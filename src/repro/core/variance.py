"""Variance analysis for datatype parameters.

Subtyping between indexed types makes the variance of type arguments
matter: ``int(5) list(n) <= ([i:int] int(i)) list(n)`` should hold
(lists only *produce* their elements), while the same coercion on
``array`` must be rejected (arrays are written through, so their
element type is invariant).

A parameter is covariant when every occurrence in every constructor
argument type is positive, contravariant when every occurrence is
negative, and invariant otherwise.  Occurrences under another family's
parameters compose with that family's variance; occurrences under the
family being defined are treated at the position's own (in-progress)
variance, resolved by a small fixed-point iteration.
"""

from __future__ import annotations

from repro.core.env import Family, GlobalEnv
from repro.types import types as dt

#: Lattice: "none" < "co"/"contra" < "invariant".
_JOIN = {
    ("none", "co"): "co",
    ("none", "contra"): "contra",
    ("none", "invariant"): "invariant",
    ("none", "none"): "none",
    ("co", "co"): "co",
    ("co", "contra"): "invariant",
    ("co", "invariant"): "invariant",
    ("contra", "contra"): "contra",
    ("contra", "invariant"): "invariant",
    ("invariant", "invariant"): "invariant",
}


def _join(a: str, b: str) -> str:
    if (a, b) in _JOIN:
        return _JOIN[(a, b)]
    return _JOIN[(b, a)]


def _flip(v: str) -> str:
    if v == "co":
        return "contra"
    if v == "contra":
        return "co"
    return v


def _compose(outer: str, inner: str) -> str:
    """Variance of an occurrence at ``inner`` polarity inside a
    parameter position of variance ``outer``."""
    if inner == "none":
        return "none"
    if outer == "co":
        return inner
    if outer == "contra":
        return _flip(inner)
    return "invariant"


def compute_variances(family: Family, env: GlobalEnv) -> list[str]:
    """Variance of each of ``family``'s type parameters."""
    names: list[str] = []
    for con_name in family.constructors:
        info = env.constructor(con_name)
        assert info is not None
        names = list(info.scheme.tyvars)
        break
    if not names:
        return ["co"] * family.tyvar_count

    # Fixed point: start optimistic (covariant self-occurrences).
    current = ["co"] * len(names)
    for _ in range(len(names) + 2):
        previous = list(current)
        for k, tyvar in enumerate(names):
            seen = "none"
            for con_name in family.constructors:
                info = env.constructor(con_name)
                assert info is not None
                body = info.scheme.body
                # Only the argument type of the arrow matters; the
                # result is the family application itself.
                arg = _constructor_arg(body)
                if arg is not None:
                    seen = _join(seen, _occurrence(arg, tyvar, "co", family,
                                                   previous, names, env))
            current[k] = "co" if seen == "none" else seen
        if current == previous:
            break
    return current


def _constructor_arg(body: dt.DType) -> dt.DType | None:
    while isinstance(body, (dt.DPi, dt.DSig)):
        body = body.body
    if isinstance(body, dt.DArrow):
        return body.dom
    return None


def _occurrence(
    ty: dt.DType,
    tyvar: str,
    polarity: str,
    self_family: Family,
    self_variances: list[str],
    self_names: list[str],
    env: GlobalEnv,
) -> str:
    if isinstance(ty, dt.DTyVar):
        return polarity if ty.name == tyvar else "none"
    if isinstance(ty, (dt.DMeta,)):
        return "none"
    if isinstance(ty, dt.DTuple):
        result = "none"
        for item in ty.items:
            result = _join(result, _occurrence(item, tyvar, polarity,
                                               self_family, self_variances,
                                               self_names, env))
        return result
    if isinstance(ty, dt.DArrow):
        dom = _occurrence(ty.dom, tyvar, _flip(polarity), self_family,
                          self_variances, self_names, env)
        cod = _occurrence(ty.cod, tyvar, polarity, self_family,
                          self_variances, self_names, env)
        return _join(dom, cod)
    if isinstance(ty, (dt.DPi, dt.DSig)):
        return _occurrence(ty.body, tyvar, polarity, self_family,
                           self_variances, self_names, env)
    if isinstance(ty, dt.DBase):
        result = "none"
        for k, arg in enumerate(ty.tyargs):
            if ty.name == self_family.name:
                outer = self_variances[k] if k < len(self_variances) else "co"
            else:
                other = env.family(ty.name)
                outer = other.variance(k) if other else "invariant"
            inner = _occurrence(arg, tyvar, polarity, self_family,
                                self_variances, self_names, env)
            result = _join(result, _compose(outer, inner))
        return result
    raise AssertionError(f"unknown type {ty!r}")
