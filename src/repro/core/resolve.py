"""Name resolution: distinguishing constructors from variables.

The parser cannot know whether ``nil`` or ``NONE`` is a variable or a
nullary constructor, so it emits :class:`~repro.lang.ast.PVar` /
:class:`~repro.lang.ast.EVar` for bare identifiers.  This pass rewrites
them to :class:`PCon` / :class:`ECon` using the set of constructors
declared so far.  As in SML, a constructor name cannot be re-bound as a
variable — attempting to do so is an error rather than a shadow.
"""

from __future__ import annotations

from repro.lang import ast
from repro.lang.errors import ElabError


def resolve_pattern(pat: ast.Pattern, cons: set[str]) -> ast.Pattern:
    if isinstance(pat, ast.PVar):
        if pat.name in cons:
            return ast.PCon(pat.name, None, span=pat.span)
        return pat
    if isinstance(pat, ast.PCon):
        if pat.name not in cons:
            raise ElabError(f"unknown constructor {pat.name!r}", pat.span)
        arg = None if pat.arg is None else resolve_pattern(pat.arg, cons)
        return ast.PCon(pat.name, arg, span=pat.span)
    if isinstance(pat, ast.PTuple):
        return ast.PTuple(
            [resolve_pattern(p, cons) for p in pat.items], span=pat.span
        )
    return pat


def _binds_constructor(pat: ast.Pattern, cons: set[str]) -> str | None:
    """Detect an attempt to bind a constructor name as a variable —
    only reachable via contexts that bind without resolution."""
    if isinstance(pat, ast.PVar) and pat.name in cons:
        return pat.name
    return None


def resolve_expr(expr: ast.Expr, cons: set[str]) -> ast.Expr:
    if isinstance(expr, ast.EVar):
        if expr.name in cons:
            return ast.ECon(expr.name, span=expr.span)
        return expr
    if isinstance(expr, (ast.EInt, ast.EBool, ast.EUnit, ast.ECon)):
        return expr
    if isinstance(expr, ast.EApp):
        return ast.EApp(
            resolve_expr(expr.fn, cons), resolve_expr(expr.arg, cons), span=expr.span
        )
    if isinstance(expr, ast.ETuple):
        return ast.ETuple([resolve_expr(e, cons) for e in expr.items], span=expr.span)
    if isinstance(expr, ast.EIf):
        return ast.EIf(
            resolve_expr(expr.cond, cons),
            resolve_expr(expr.then, cons),
            resolve_expr(expr.els, cons),
            span=expr.span,
        )
    if isinstance(expr, ast.EAndAlso):
        return ast.EAndAlso(
            resolve_expr(expr.left, cons), resolve_expr(expr.right, cons),
            span=expr.span,
        )
    if isinstance(expr, ast.EOrElse):
        return ast.EOrElse(
            resolve_expr(expr.left, cons), resolve_expr(expr.right, cons),
            span=expr.span,
        )
    if isinstance(expr, ast.ELet):
        return ast.ELet(
            [resolve_decl(d, cons) for d in expr.decls],
            resolve_expr(expr.body, cons),
            span=expr.span,
        )
    if isinstance(expr, ast.ECase):
        clauses = [
            (resolve_pattern(p, cons), resolve_expr(e, cons))
            for p, e in expr.clauses
        ]
        return ast.ECase(resolve_expr(expr.scrutinee, cons), clauses, span=expr.span)
    if isinstance(expr, ast.EFn):
        return ast.EFn(
            resolve_pattern(expr.param, cons),
            resolve_expr(expr.body, cons),
            span=expr.span,
        )
    if isinstance(expr, ast.ESeq):
        return ast.ESeq([resolve_expr(e, cons) for e in expr.items], span=expr.span)
    if isinstance(expr, ast.EAnnot):
        return ast.EAnnot(resolve_expr(expr.expr, cons), expr.ty, span=expr.span)
    if isinstance(expr, ast.ERaise):
        return ast.ERaise(resolve_expr(expr.expr, cons), span=expr.span)
    if isinstance(expr, ast.EHandle):
        clauses = [
            (resolve_pattern(p, cons), resolve_expr(e, cons))
            for p, e in expr.clauses
        ]
        return ast.EHandle(resolve_expr(expr.expr, cons), clauses, span=expr.span)
    raise AssertionError(f"unknown expression {expr!r}")


def resolve_decl(decl: ast.Decl, cons: set[str]) -> ast.Decl:
    if isinstance(decl, ast.DVal):
        return ast.DVal(
            resolve_pattern(decl.pat, cons),
            resolve_expr(decl.expr, cons),
            decl.where_type,
            span=decl.span,
        )
    if isinstance(decl, ast.DFun):
        bindings = []
        for binding in decl.bindings:
            if binding.name in cons:
                raise ElabError(
                    f"cannot bind constructor name {binding.name!r} as a function",
                    binding.span,
                )
            clauses = [
                ast.Clause(
                    [resolve_pattern(p, cons) for p in clause.params],
                    resolve_expr(clause.body, cons),
                    span=clause.span,
                )
                for clause in binding.clauses
            ]
            bindings.append(
                ast.FunBinding(
                    binding.name,
                    binding.typarams,
                    binding.ixparams,
                    clauses,
                    binding.where_type,
                    span=binding.span,
                )
            )
        return ast.DFun(bindings, span=decl.span)
    # datatype / typeref / assert / type decls contain no term names.
    return decl
