"""Counterexample search for unsolved constraints.

Section 6: "unsolved constraints generated during type-checking may
provide some hints on where type errors originate, but they are often
inaccurate and obscure.  Therefore, we plan to investigate how to
generate more informative error messages."

This module implements that plan: for a failed proof goal it searches
for a concrete assignment of the universal index variables that
satisfies every hypothesis but falsifies the conclusion — exactly the
scenario under which the run-time check would have fired.  The search
is bounded (small integer boxes, widened geometrically), which is
effective in practice because bound violations are witnessed by small
indices.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.indices.terms import EvarStore
from repro.solver.bruteforce import find_model
from repro.solver.simplify import Goal, UnsupportedGoal, goal_atom_sets


@dataclass
class Counterexample:
    """A concrete scenario violating a proof goal."""

    goal: Goal
    assignment: dict[str, int]

    def describe(self) -> str:
        if not self.assignment:
            return "the conclusion is false outright"
        bindings = ", ".join(
            f"{name} = {value}" for name, value in sorted(self.assignment.items())
        )
        return f"fails when {bindings}"


def find_counterexample(
    goal: Goal,
    store: EvarStore,
    max_bound: int = 64,
) -> Counterexample | None:
    """Search for an assignment refuting the goal.

    Returns ``None`` when no counterexample exists within the bound
    (the goal may be valid but beyond the solver, e.g. nonlinear).
    """
    concl = store.resolve(goal.concl)
    hyps = [store.resolve(h) for h in goal.hyps]
    for name, sort in goal.rigid.items():
        from repro.indices import terms

        membership = sort.constraint_on(terms.IVar(name))
        if not (isinstance(membership, terms.BConst) and membership.value):
            hyps.append(membership)
    if store.unsolved_in(concl) or any(store.unsolved_in(h) for h in hyps):
        return None

    try:
        atom_sets = list(goal_atom_sets(hyps, concl))
    except UnsupportedGoal:
        return None

    bound = 4
    while bound <= max_bound:
        for atoms in atom_sets:
            model = find_model(atoms, bound)
            if model is not None:
                assignment = {
                    var: value
                    for var, value in model.items()
                    if isinstance(var, str) and not var.startswith("$")
                }
                return Counterexample(goal, assignment)
        bound *= 4
    return None


def explain_failures(report, limit: int = 5) -> list[str]:
    """Human-readable diagnostics for a CheckReport's failed goals."""
    lines: list[str] = []
    store = report.elab.store
    for result in report.failed_goals[:limit]:
        where = report.source.describe(result.goal.span)
        origin = f" [{result.goal.origin}]" if result.goal.origin else ""
        counterexample = find_counterexample(result.goal, store)
        concl = store.resolve(result.goal.concl)
        if counterexample is not None:
            lines.append(
                f"{where}{origin}: cannot prove {concl}; "
                f"{counterexample.describe()}"
            )
        else:
            lines.append(
                f"{where}{origin}: cannot prove {concl} ({result.reason})"
            )
    return lines
