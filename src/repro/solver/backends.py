"""Uniform interface over the linear-arithmetic decision backends.

A *backend* answers one question: is a conjunction of linear atoms
unsatisfiable over the integers?  ``True`` must be trustworthy
(soundness of check elimination depends on it); ``False`` may simply
mean "not proven".

Available backends:

* ``fourier`` — the paper's method (Fourier elimination + gcd
  tightening); incomplete but fast.  The default.
* ``fourier-rational`` — tightening disabled; complete for rationals
  only.  Demonstrates why the paper needed the rounding rule.
* ``omega`` — Pugh's Omega test; complete for integers (the paper's
  stated future work).
* ``simplex`` — exact rational simplex; like ``fourier-rational`` but
  by a different algorithm (cross-validation + ablation baseline).
* ``interval`` — bounds propagation in the SUP-INF spirit (Shostak
  1977, the paper's other cited alternative); fastest and weakest.
* ``portfolio`` — memoized escalation ``interval`` → ``fourier`` →
  ``omega`` with a shared canonical-form cache and telemetry (see
  :mod:`repro.solver.portfolio`).
* ``differential`` — answers with ``fourier`` but cross-checks every
  UNSAT verdict against ``omega``, raising on a soundness violation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Sequence

from repro.indices.linear import Atom
from repro.solver import fourier, interval, omega, simplex


@dataclass
class Backend:
    """A named decision procedure for conjunctions of linear atoms."""

    name: str
    unsat: Callable[[Sequence[Atom]], bool]
    #: Complete over the integers (an ``unsat() == False`` answer then
    #: guarantees integer satisfiability).
    integer_complete: bool = False


def _fourier_unsat(atoms: Sequence[Atom]) -> bool:
    return fourier.fourier_unsat(atoms, fourier.FourierConfig())


def _fourier_rational_unsat(atoms: Sequence[Atom]) -> bool:
    config = fourier.FourierConfig(integer_tightening=False)
    return fourier.fourier_unsat(atoms, config)


def _omega_unsat(atoms: Sequence[Atom]) -> bool:
    return omega.omega_unsat(atoms)


def _simplex_unsat(atoms: Sequence[Atom]) -> bool:
    return simplex.simplex_unsat(atoms)


def _interval_unsat(atoms: Sequence[Atom]) -> bool:
    return interval.interval_unsat(atoms)


def _portfolio_unsat(atoms: Sequence[Atom]) -> bool:
    # Imported lazily: portfolio builds on this module's Backend class.
    from repro.solver import portfolio

    return portfolio.default_portfolio().unsat(atoms)


def _differential_unsat(atoms: Sequence[Atom]) -> bool:
    from repro.solver import portfolio

    return portfolio.default_differential().unsat(atoms)


_REGISTRY: dict[str, Backend] = {
    "fourier": Backend("fourier", _fourier_unsat),
    "fourier-rational": Backend("fourier-rational", _fourier_rational_unsat),
    "omega": Backend("omega", _omega_unsat, integer_complete=True),
    "simplex": Backend("simplex", _simplex_unsat),
    "interval": Backend("interval", _interval_unsat),
    # The last tier of the portfolio is omega, so a final "not proven"
    # carries omega's (budget-capped) completeness guarantee.
    "portfolio": Backend("portfolio", _portfolio_unsat, integer_complete=True),
    "differential": Backend("differential", _differential_unsat),
}

DEFAULT_BACKEND = "fourier"


def get_backend(name: str = DEFAULT_BACKEND) -> Backend:
    try:
        return _REGISTRY[name]
    except KeyError:
        known = ", ".join(sorted(_REGISTRY))
        raise ValueError(f"unknown solver backend {name!r} (known: {known})") from None


def backend_names() -> list[str]:
    return sorted(_REGISTRY)
