"""The Omega test: exact integer (un)satisfiability of linear systems.

Section 3.2 of the paper notes that Fourier elimination with gcd
tightening is "sound but incomplete" and that the method "can be
extended to be both sound and complete while remaining practical (see
Pugh and Wonnacott 1992/1994)"; Section 6 lists adopting those ideas as
future work.  This module implements that extension — Pugh's Omega test
— so the benchmark harness can compare the paper's incomplete solver
against the complete one on the same constraint corpus (both consume
the same memoized ``Atom`` translation over the interned IR, so the
comparison isolates pure solver cost).

The algorithm:

* **Equality elimination.**  Equalities are removed first.  An equality
  with a unit coefficient solves directly; otherwise Pugh's symmetric
  modulus substitution introduces a fresh variable whose coefficient is
  a unit, shrinking the remaining coefficients geometrically.
* **Shadow computation.**  For a chosen variable, the *real shadow* is
  classic Fourier elimination (complete for rationals); the *dark
  shadow* strengthens each combination by ``(a-1)(b-1)`` and is a
  sufficient condition for an integer point.  When every pairing has a
  unit coefficient the shadows coincide and elimination is exact.
* **Splinters.**  When the real shadow is satisfiable but the dark
  shadow is not, integer solutions (if any) hug a lower bound:
  ``b*x = -L + i`` for small ``i``; each splinter adds that equality
  and recurses.
"""

from __future__ import annotations

from dataclasses import dataclass
from math import floor
from typing import Sequence

from repro.indices.linear import Atom, LinComb, LinVar
from repro.solver.budget import Budget, BudgetExhausted, resolve_budget

#: Backwards-compatible alias: exhaustion is now the solver-wide
#: :class:`~repro.solver.budget.BudgetExhausted` (callers report
#: 'unknown').
OmegaBudgetExceeded = BudgetExhausted


@dataclass
class OmegaStats:
    equality_steps: int = 0
    shadow_steps: int = 0
    splinters: int = 0


@dataclass
class OmegaConfig:
    #: Per-call step cap.  When a goal-level budget is active this
    #: becomes a sub-budget of it, so one omega call can never spend
    #: more than this even inside a large goal envelope.
    max_steps: int = 100_000
    #: Shadow/splinter recursion depth cap.  Deep inequality chains
    #: used to walk straight into Python's recursion limit and escape
    #: as a raw ``RecursionError``; past this depth the descent maps to
    #: the budget-exhausted 'unknown' path instead (check kept).
    max_depth: int = 240


_sigma_counter = 0


def _fresh_sigma() -> str:
    global _sigma_counter
    _sigma_counter += 1
    return f"$sigma{_sigma_counter}"


def _mod_hat(a: int, m: int) -> int:
    """Symmetric residue of ``a`` modulo ``m``, in ``(-m/2, m/2]``."""
    r = a % m
    if 2 * r > m:
        r -= m
    return r


def _normalize_equality(eq: LinComb) -> LinComb | None:
    """Divide an equality by the gcd of its coefficients.

    Returns ``None`` when the equality is integrally unsatisfiable
    (gcd of variable coefficients does not divide the constant).
    """
    g = eq.content()
    if g == 0:
        return eq if eq.const == 0 else None
    if eq.const % g != 0:
        return None
    return LinComb(tuple((v, c // g) for v, c in eq.coeffs), eq.const // g)


def _tighten_exact(ineq: LinComb) -> LinComb:
    """gcd rounding of ``ineq >= 0`` — exact over the integers."""
    g = ineq.content()
    if g <= 1:
        return ineq
    return LinComb(tuple((v, c // g) for v, c in ineq.coeffs), floor(ineq.const / g))


def _solve_equalities(
    atoms: Sequence[Atom], budget: Budget, stats: OmegaStats
) -> list[LinComb] | None:
    """Eliminate all equalities; return residual inequalities.

    ``None`` signals a detected contradiction (hence UNSAT).
    """
    equalities: list[LinComb] = []
    inequalities: list[LinComb] = []
    for atom in atoms:
        if atom.rel == "=":
            equalities.append(atom.lhs)
        else:
            inequalities.append(atom.lhs)

    def substitute_everywhere(var: LinVar, replacement: LinComb) -> bool:
        nonlocal equalities, inequalities
        new_eqs = []
        for eq in equalities:
            new_eq = _normalize_equality(eq.substitute(var, replacement))
            if new_eq is None:
                return False
            if new_eq.is_const():
                if new_eq.const != 0:
                    return False
                continue
            new_eqs.append(new_eq)
        equalities = new_eqs
        inequalities = [iq.substitute(var, replacement) for iq in inequalities]
        return True

    while equalities:
        budget.spend()
        stats.equality_steps += 1
        eq = _normalize_equality(equalities.pop())
        if eq is None:
            return None
        if eq.is_const():
            if eq.const != 0:
                return None
            continue

        unit = next(((v, c) for v, c in eq.coeffs if abs(c) == 1), None)
        if unit is not None:
            var, coeff = unit
            # coeff*var + rest = 0  =>  var = -coeff*rest (coeff = +-1)
            replacement = eq.drop(var).scale(-coeff)
            if not substitute_everywhere(var, replacement):
                return None
            continue

        # Pugh's symmetric-modulus substitution.
        var, coeff = min(eq.coeffs, key=lambda item: (abs(item[1]), repr(item[0])))
        m = abs(coeff) + 1
        sigma = _fresh_sigma()
        hatted: dict[LinVar, int] = {sigma: -m}
        for v, c in eq.coeffs:
            hatted[v] = _mod_hat(c, m)
        new_eq = LinComb(
            tuple(sorted(((v, c) for v, c in hatted.items() if c != 0), key=lambda i: repr(i[0]))),
            _mod_hat(eq.const, m),
        )
        # In new_eq, var's coefficient is mod_hat(coeff, m) = -sign(coeff),
        # a unit: solve new_eq for var and substitute into everything,
        # including the original equality (whose coefficients shrink).
        var_coeff = new_eq.coeff(var)
        assert abs(var_coeff) == 1, "symmetric modulus must yield a unit coefficient"
        replacement = new_eq.drop(var).scale(-var_coeff)
        equalities.append(eq)
        if not substitute_everywhere(var, replacement):
            return None

    result: list[LinComb] = []
    for iq in inequalities:
        iq = _tighten_exact(iq)
        if iq.is_const():
            if iq.const < 0:
                return None
            continue
        result.append(iq)
    return result


def _choose_variable(ineqs: Sequence[LinComb]) -> LinVar:
    """Prefer a variable for which elimination is exact (some side all
    units), breaking ties by the number of generated pairs."""
    info: dict[LinVar, dict[str, int]] = {}
    for iq in ineqs:
        for var, coeff in iq.coeffs:
            entry = info.setdefault(var, {"low": 0, "up": 0, "maxc": 0, "unit_ok": 1})
            if coeff > 0:
                entry["low"] += 1
            else:
                entry["up"] += 1
            entry["maxc"] = max(entry["maxc"], abs(coeff))

    def key(var: LinVar) -> tuple:
        entry = info[var]
        exact = 0 if entry["maxc"] == 1 else 1
        return (exact, entry["low"] * entry["up"], entry["maxc"], repr(var))

    return min(info, key=key)


def _omega_ineqs(
    ineqs: list[LinComb],
    budget: Budget,
    stats: OmegaStats,
    depth: int,
    max_depth: int,
) -> bool:
    """Exact satisfiability of a pure-inequality system.

    ``depth`` tracks the shadow/splinter descent; exceeding
    ``max_depth`` exhausts the budget (the caller reports 'unknown')
    rather than letting a deep chain raise ``RecursionError`` through
    the checker.
    """
    if depth > max_depth:
        budget.exhaust("depth")
    budget.spend()
    work: list[LinComb] = []
    for iq in ineqs:
        iq = _tighten_exact(iq)
        if iq.is_const():
            if iq.const < 0:
                return False
            continue
        work.append(iq)
    if not work:
        return True

    var = _choose_variable(work)
    lowers: list[LinComb] = []  # b*x + L >= 0 with b > 0
    uppers: list[LinComb] = []  # -a*x + U >= 0 with a > 0
    rest: list[LinComb] = []
    for iq in work:
        coeff = iq.coeff(var)
        if coeff > 0:
            lowers.append(iq)
        elif coeff < 0:
            uppers.append(iq)
        else:
            rest.append(iq)

    if not lowers or not uppers:
        # var is unbounded on one side: project it away entirely.
        return _omega_ineqs(rest, budget, stats, depth + 1, max_depth)

    stats.shadow_steps += 1
    real_shadow: list[LinComb] = list(rest)
    dark_shadow: list[LinComb] = list(rest)
    exact = True
    for low in lowers:
        b = low.coeff(var)
        for up in uppers:
            a = -up.coeff(var)
            budget.spend()
            combined = up.drop(var).scale(b) + low.drop(var).scale(a)
            real_shadow.append(combined)
            slack = (a - 1) * (b - 1)
            if slack:
                exact = False
            dark_shadow.append(combined + LinComb.of_const(-slack))

    if not _omega_ineqs(real_shadow, budget, stats, depth + 1, max_depth):
        return False
    if exact:
        # Real and dark shadows coincide; the real shadow was SAT.
        return True
    if _omega_ineqs(dark_shadow, budget, stats, depth + 1, max_depth):
        return True

    # Splinter search: integer solutions must sit close to a lower bound.
    max_a = max(-up.coeff(var) for up in uppers)
    for low in lowers:
        b = low.coeff(var)
        limit = (max_a * b - max_a - b) // max_a
        for i in range(limit + 1):
            stats.splinters += 1
            budget.spend()
            splinter = [Atom("=", low + LinComb.of_const(-i))]
            splinter += [Atom(">=", iq) for iq in work]
            if _omega_atoms(splinter, budget, stats, depth + 1, max_depth):
                return True
    return False


def _omega_atoms(
    atoms: Sequence[Atom],
    budget: Budget,
    stats: OmegaStats,
    depth: int,
    max_depth: int,
) -> bool:
    """Satisfiability of a mixed equality/inequality system at a given
    descent depth (the splinter re-entry point)."""
    ineqs = _solve_equalities(atoms, budget, stats)
    if ineqs is None:
        return False
    return _omega_ineqs(ineqs, budget, stats, depth, max_depth)


def omega_sat(
    atoms: Sequence[Atom],
    config: OmegaConfig | None = None,
    budget: Budget | None = None,
    stats: OmegaStats | None = None,
) -> bool:
    """Exact integer satisfiability of a conjunction of atoms.

    Raises :class:`~repro.solver.budget.BudgetExhausted` when the work
    budget runs out.  When a goal-level budget is active (passed
    explicitly or ambient via :func:`repro.solver.budget.use_budget`),
    this call spends from it through a sub-budget capped at
    ``config.max_steps``, preserving the classic per-call omega cap.
    """
    config = config or OmegaConfig()
    outer = resolve_budget(budget)
    if outer is None:
        call_budget = Budget(config.max_steps)
    else:
        call_budget = outer.sub(config.max_steps)
    stats = stats if stats is not None else OmegaStats()
    return _omega_atoms(atoms, call_budget, stats, 0, config.max_depth)


def omega_unsat(
    atoms: Sequence[Atom],
    config: OmegaConfig | None = None,
    stats: OmegaStats | None = None,
    budget: Budget | None = None,
) -> bool:
    """Backend entry point: ``True`` iff provably unsatisfiable.

    Budget or depth exhaustion conservatively reports ``False``
    ("unknown"), as does a ``RecursionError`` (defense in depth — the
    explicit ``max_depth`` cap should fire first).
    """
    try:
        return not omega_sat(atoms, config=config, stats=stats, budget=budget)
    except BudgetExhausted:
        return False
    except RecursionError:  # pragma: no cover - max_depth fires first
        return False
