"""Fourier variable elimination with integer tightening (Section 3.2).

The paper's solver shows a conjunction of linear constraints
unsatisfiable by repeatedly eliminating a variable ``x``: every pair
``l1 <= a1*x`` and ``a2*x <= l2`` (``a1, a2 > 0``) contributes the new
inequality ``a2*l1 <= a1*l2``, after which all constraints mentioning
``x`` are dropped.  This is sound and, over the rationals, complete.

To "handle modular arithmetic" the paper adds a rounding step: an
inequality ``a1*x1 + ... + an*xn <= a`` is strengthened to
``... <= a'`` where ``a'`` is the largest integer ``<= a`` divisible by
``gcd(a1..an)``.  In our ``lhs >= 0`` normal form this is: divide the
variable coefficients by their gcd ``g`` and replace the constant ``c``
by ``floor(c / g)`` — sound only over the integers, and exactly what is
needed to type-check the optimized byte-copy function.

The procedure remains *incomplete* over the integers (rationally
satisfiable but integrally unsatisfiable systems can survive); the
complete :mod:`repro.solver.omega` backend exists for comparison.

Inputs arrive as :class:`repro.indices.linear.Atom` systems produced
by the memoized ``linearize``/``atoms_of_cmp`` layer over the interned
IR — repeated goals over the same comparisons reuse their translation,
so this module only ever pays for the elimination itself.
"""

from __future__ import annotations

import threading
from collections import deque
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Iterable, Iterator, Sequence

from repro.indices.linear import Atom, LinComb, LinVar
from repro.solver.budget import Budget, BudgetExhausted, resolve_budget


@dataclass
class FourierStats:
    """Operation counters for the benchmark harness.

    ``tightenings`` counts every application of the paper's rounding
    rule — each inequality rewritten because its coefficient gcd
    exceeds 1 — whether or not the constant moved; ``roundings`` counts
    the strict subset where the constant was actually rounded down
    (the only applications that change the rational solution set).
    """

    eliminations: int = 0
    pair_combinations: int = 0
    tightenings: int = 0
    roundings: int = 0


@dataclass
class FourierConfig:
    """Tuning knobs, primarily for the ablation benchmarks."""

    integer_tightening: bool = True
    #: Abort (returning "unknown") once this many inequalities exist.
    max_inequalities: int = 20_000
    #: Abort after eliminating this many variables (defensive; the
    #: paper's constraints have at most a handful of variables).
    max_eliminations: int = 64


def _tighten(ineq: LinComb, config: FourierConfig, stats: FourierStats) -> LinComb:
    """Apply the gcd rounding rule to ``ineq >= 0``.

    Exact integer floor division throughout: ``ineq.const / g`` through
    a float would misround for constants beyond 2**53 and either weaken
    the rule or (worse) over-tighten it into unsoundness.
    """
    if not config.integer_tightening:
        return ineq
    g = ineq.content()
    if g <= 1:
        return ineq
    stats.tightenings += 1
    new_const = ineq.const // g
    if new_const * g != ineq.const:
        stats.roundings += 1
    return LinComb(
        tuple((v, c // g) for v, c in ineq.coeffs),
        new_const,
    )


def _expand_equalities(atoms: Iterable[Atom]) -> list[LinComb] | None:
    """Normalize atoms to pure inequalities ``lin >= 0``.

    Equalities whose coefficients' gcd does not divide the constant are
    an immediate integer contradiction, signalled by returning ``None``.
    Other equalities become a pair of opposite inequalities.
    """
    ineqs: list[LinComb] = []
    for atom in atoms:
        if atom.rel == "=":
            g = atom.lhs.content()
            if g == 0:
                if atom.lhs.const != 0:
                    return None
                continue
            if atom.lhs.const % g != 0:
                return None
            ineqs.append(atom.lhs)
            ineqs.append(-atom.lhs)
        else:
            ineqs.append(atom.lhs)
    return ineqs


def _find_unit(atom: Atom) -> tuple[LinVar, int] | None:
    """The first +-1-coefficient variable of an equality, if any."""
    if atom.rel != "=":
        return None
    for var, coeff in atom.lhs.coeffs:
        if abs(coeff) == 1:
            return var, coeff
    return None


def _substitute_unit_equalities(
    atoms: Sequence[Atom],
    budget: Budget | None = None,
    record: list[tuple[LinVar, LinComb]] | None = None,
) -> list[Atom] | None:
    """Use equalities with a +-1 coefficient to eliminate variables.

    This mirrors the "eliminate existential variables / solve simple
    equations first" preprocessing and keeps the inequality set small.
    Returns ``None`` on an immediate contradiction.  ``record``
    collects the ``(var, replacement)`` pairs in application order so
    a shared-prefix presolve can replay them on later residual atoms.

    Single worklist pass: each atom is examined for a unit equality
    once, and re-examined only when a substitution actually rewrote it
    (a rewrite can surface a new unit coefficient).  The eliminated
    variable never reappears — its replacement does not mention it — so
    each equality is processed at most once, rather than rescanning the
    whole list from index 0 after every substitution (quadratic on
    equality-heavy systems).
    """
    queue: deque[Atom] = deque(atoms)
    done: list[Atom] = []
    while queue:
        if budget is not None:
            budget.spend()
        atom = queue.popleft()
        unit = _find_unit(atom)
        if unit is None:
            done.append(atom)
            continue
        unit_var, unit_coeff = unit
        # coeff * var + rest = 0  =>  var = -rest / coeff
        rest = atom.lhs.drop(unit_var)
        replacement = rest.scale(-unit_coeff)  # coeff in {1,-1}
        if record is not None:
            record.append((unit_var, replacement))

        def rewrite(other: Atom) -> Atom | None:
            """Substituted atom, or ``None`` when it became trivial.
            Raises ``_Contradiction`` on a trivially false result."""
            new_atom = Atom(other.rel, other.lhs.substitute(unit_var, replacement))
            if new_atom.is_trivially_false():
                raise _Contradiction
            return None if new_atom.is_trivially_true() else new_atom

        try:
            new_queue: deque[Atom] = deque()
            for other in queue:
                if other.lhs.coeff(unit_var) == 0:
                    new_queue.append(other)
                    continue
                rewritten = rewrite(other)
                if rewritten is not None:
                    new_queue.append(rewritten)
            new_done: list[Atom] = []
            for other in done:
                if other.lhs.coeff(unit_var) == 0:
                    new_done.append(other)
                    continue
                rewritten = rewrite(other)
                if rewritten is not None:
                    # May have gained a unit coefficient: re-examine.
                    new_queue.append(rewritten)
        except _Contradiction:
            return None
        queue = new_queue
        done = new_done
    return done


class _Contradiction(Exception):
    """A substitution produced a trivially false atom."""


def _pick_variable(
    ineqs: Sequence[LinComb],
    restrict: set[LinVar] | None = None,
) -> LinVar | None:
    """Choose the variable whose elimination produces the fewest new
    inequalities (classic FM heuristic).  With ``restrict``, only those
    variables are candidates (used by the prefix presolve, which must
    leave protected variables in place)."""
    occurrences: dict[LinVar, tuple[int, int]] = {}
    for ineq in ineqs:
        for var, coeff in ineq.coeffs:
            if restrict is not None and var not in restrict:
                continue
            lower, upper = occurrences.get(var, (0, 0))
            # ineq >= 0 with positive coeff bounds var from below.
            if coeff > 0:
                occurrences[var] = (lower + 1, upper)
            else:
                occurrences[var] = (lower, upper + 1)
    if not occurrences:
        return None
    return min(
        occurrences,
        key=lambda v: (occurrences[v][0] * occurrences[v][1], repr(v)),
    )


def fourier_unsat(
    atoms: Sequence[Atom],
    config: FourierConfig | None = None,
    stats: FourierStats | None = None,
    budget: Budget | None = None,
) -> bool:
    """Return ``True`` iff the conjunction of ``atoms`` is shown
    unsatisfiable over the integers.

    ``False`` means "not shown unsatisfiable" — over the rationals the
    procedure is complete, so with tightening disabled ``False``
    guarantees rational satisfiability; with tightening enabled the
    answer is still only one-sided.

    Work (eliminations, pair combinations, unit substitutions) spends
    from the explicit or ambient :class:`Budget`; exhaustion degrades
    to ``False`` ("unknown"), never an exception.
    """
    budget = resolve_budget(budget)
    try:
        slot = getattr(_PREFIX, "slot", None)
        if slot is not None:
            resumed = _try_resume(slot.state, atoms, config, stats, budget)
            if resumed is not None:
                slot.uses += 1
                return resumed
        return _fourier_unsat(atoms, config, stats, budget)
    except BudgetExhausted:
        return False


def _fourier_unsat(
    atoms: Sequence[Atom],
    config: FourierConfig | None,
    stats: FourierStats | None,
    budget: Budget | None,
) -> bool:
    config = config or FourierConfig()
    stats = stats if stats is not None else FourierStats()

    pre = _substitute_unit_equalities(list(atoms), budget)
    if pre is None:
        return True
    ineqs = _expand_equalities(pre)
    if ineqs is None:
        return True

    ineqs = [_tighten(iq, config, stats) for iq in ineqs]
    for iq in ineqs:
        if iq.is_const() and iq.const < 0:
            return True

    return _eliminate_loop(ineqs, config, stats, budget)


def _eliminate_variable(
    ineqs: list[LinComb],
    var: LinVar,
    config: FourierConfig,
    stats: FourierStats,
    budget: Budget | None,
) -> tuple[list[LinComb], bool, bool]:
    """One Fourier elimination step: ``(new system, refuted, overflow)``.

    ``overflow`` means the inequality cap was hit mid-combination; the
    caller decides whether that aborts the solve (the main loop answers
    "unknown") or merely stops further presolving (a shared prefix
    keeps the variable and lets the per-goal resume handle it).
    """
    stats.eliminations += 1

    lowers: list[LinComb] = []  # a*x >= l  (coeff > 0)
    uppers: list[LinComb] = []  # a*x <= u  (coeff < 0)
    rest: list[LinComb] = []
    for iq in ineqs:
        coeff = iq.coeff(var)
        if coeff > 0:
            lowers.append(iq)
        elif coeff < 0:
            uppers.append(iq)
        else:
            rest.append(iq)

    new_ineqs = rest
    for low in lowers:
        a1 = low.coeff(var)
        for up in uppers:
            a2 = -up.coeff(var)
            if budget is not None:
                budget.spend()
            stats.pair_combinations += 1
            # low: a1*x + L >= 0, up: -a2*x + U >= 0
            # =>  a2*L + a1*U >= 0
            combined = low.drop(var).scale(a2) + up.drop(var).scale(a1)
            combined = _tighten(combined, config, stats)
            if combined.is_const():
                if combined.const < 0:
                    return new_ineqs, True, False
                continue
            new_ineqs.append(combined)
            if len(new_ineqs) > config.max_inequalities:
                return new_ineqs, False, True
    return new_ineqs, False, False


def _eliminate_loop(
    ineqs: list[LinComb],
    config: FourierConfig,
    stats: FourierStats,
    budget: Budget | None,
) -> bool:
    for _ in range(config.max_eliminations):
        if budget is not None:
            budget.spend()
        var = _pick_variable(ineqs)
        if var is None:
            # Only constant inequalities remain; all are >= 0 here.
            return False
        ineqs, refuted, overflow = _eliminate_variable(
            ineqs, var, config, stats, budget
        )
        if refuted:
            return True
        if overflow:
            return False
        if not ineqs:
            return False
    return False


# ---------------------------------------------------------------------------
# Shared-prefix incremental solving
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class PrefixState:
    """Fourier elimination state presolved for a shared atom prefix.

    Built once per distinct hypothesis-atom set by
    :func:`presolve_prefix`; goals whose atom system extends the prefix
    resume from ``ineqs`` instead of re-running the unit-equality
    worklist, equality expansion, tightening, and the elimination of
    prefix-private variables.

    Soundness: ``ineqs`` together with ``substitutions`` is
    equisatisfiable (over the integers) with the prefix atoms;
    ``eliminated`` lists the variables removed by Fourier steps, which
    is exact for satisfiability as long as no residual atom mentions
    them — :func:`_try_resume` bails out to the from-scratch path
    otherwise.
    """

    atom_set: frozenset[Atom]
    config: FourierConfig
    refuted: bool
    substitutions: tuple[tuple[LinVar, LinComb], ...]
    ineqs: tuple[LinComb, ...]
    eliminated: frozenset[LinVar]


class _PrefixSlot:
    """Thread-local carrier for the ambient prefix plus a resume
    counter (read by the slicing layer for telemetry)."""

    __slots__ = ("state", "uses")

    def __init__(self, state: PrefixState) -> None:
        self.state = state
        self.uses = 0


_PREFIX = threading.local()


@contextmanager
def use_prefix(state: PrefixState | None) -> Iterator[_PrefixSlot]:
    """Install ``state`` as this thread's ambient prefix: any
    :func:`fourier_unsat` call whose atoms extend the prefix resumes
    from the presolved system.  Mirrors the ambient budget pattern —
    the ``Backend`` callable signature carries atoms only, so the
    memoization/portfolio wrappers need no new plumbing."""
    previous = getattr(_PREFIX, "slot", None)
    slot = _PrefixSlot(state) if state is not None else None
    _PREFIX.slot = slot
    try:
        yield slot if slot is not None else _PrefixSlot(
            PrefixState(frozenset(), FourierConfig(), False, (), (), frozenset())
        )
    finally:
        _PREFIX.slot = previous


def presolve_prefix(
    atoms: Sequence[Atom],
    protected: Iterable[LinVar],
    config: FourierConfig | None = None,
    stats: FourierStats | None = None,
    budget: Budget | None = None,
) -> PrefixState:
    """Presolve a shared hypothesis prefix.

    Runs the full preprocessing pipeline (unit-equality substitution,
    equality expansion, gcd tightening) and then eliminates every
    variable not reachable from ``protected`` — the variables later
    residual atoms may mention.  Work spends from the explicit or
    ambient budget (the first goal of a group pays for the presolve);
    :class:`~repro.solver.budget.BudgetExhausted` propagates so the
    caller can fall back instead of caching a half-built state.
    """
    config = config or FourierConfig()
    stats = stats if stats is not None else FourierStats()
    budget = resolve_budget(budget)
    atom_set = frozenset(atoms)

    def refuted_state(subs: list[tuple[LinVar, LinComb]]) -> PrefixState:
        return PrefixState(atom_set, config, True, tuple(subs), (), frozenset())

    subs: list[tuple[LinVar, LinComb]] = []
    pre = _substitute_unit_equalities(list(atoms), budget, record=subs)
    if pre is None:
        return refuted_state(subs)
    ineqs = _expand_equalities(pre)
    if ineqs is None:
        return refuted_state(subs)
    ineqs = [_tighten(iq, config, stats) for iq in ineqs]
    for iq in ineqs:
        if iq.is_const() and iq.const < 0:
            return refuted_state(subs)

    # Variables a residual can reach: the protected set plus anything a
    # recorded substitution rewrites a protected variable into.
    reach = set(protected)
    for var, repl in subs:
        if var in reach:
            reach.update(repl.variables())
    private = {v for iq in ineqs for v in iq.variables()} - reach

    eliminated: set[LinVar] = set()
    while private:
        if budget is not None:
            budget.spend()
        var = _pick_variable(ineqs, restrict=private)
        if var is None:
            break
        ineqs, refuted, overflow = _eliminate_variable(
            ineqs, var, config, stats, budget
        )
        if refuted:
            return refuted_state(subs)
        if overflow:
            # Keep the variable; the per-goal resume will handle it.
            break
        eliminated.add(var)
        private.discard(var)
        live = {v for iq in ineqs for v in iq.variables()}
        private &= live

    return PrefixState(
        atom_set, config, False, tuple(subs), tuple(ineqs), frozenset(eliminated)
    )


def _try_resume(
    state: PrefixState | None,
    atoms: Sequence[Atom],
    config: FourierConfig | None,
    stats: FourierStats | None,
    budget: Budget | None,
) -> bool | None:
    """Resume elimination from a presolved prefix, or ``None`` when the
    prefix does not apply (different config, atoms not a superset, or a
    residual atom mentions an eliminated variable)."""
    if state is None:
        return None
    config = config or FourierConfig()
    if config != state.config:
        return None
    if not state.atom_set <= set(atoms):
        return None
    if state.refuted:
        return True
    stats = stats if stats is not None else FourierStats()

    residual: list[Atom] = []
    for atom in atoms:
        if atom in state.atom_set:
            continue
        lhs = atom.lhs
        for var, repl in state.substitutions:
            lhs = lhs.substitute(var, repl)
        rewritten = Atom(atom.rel, lhs)
        if rewritten.is_trivially_false():
            return True
        if rewritten.is_trivially_true():
            continue
        residual.append(rewritten)
    if state.eliminated:
        for atom in residual:
            if not state.eliminated.isdisjoint(atom.lhs.variables()):
                return None

    combined = residual + [Atom(">=", iq) for iq in state.ineqs]
    pre = _substitute_unit_equalities(combined, budget)
    if pre is None:
        return True
    ineqs = _expand_equalities(pre)
    if ineqs is None:
        return True
    ineqs = [_tighten(iq, config, stats) for iq in ineqs]
    for iq in ineqs:
        if iq.is_const() and iq.const < 0:
            return True
    return _eliminate_loop(ineqs, config, stats, budget)
