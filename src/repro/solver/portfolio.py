"""Memoized solver portfolio with telemetry.

The constraint solver is the type checker's hot path (cf. *Really
Natural Linear Indexed Type Checking*): the corpus generates the same
linear-atom systems in bulk across call sites, and every backend query
re-solves them from scratch.  This module adds three layers on top of
the raw decision procedures in :mod:`repro.solver.backends`:

* **Canonical goal keys** — :func:`canonical_key` renames variables by
  first occurrence over a deterministic atom ordering, so structurally
  identical systems (differing only in rigid-variable names or evar
  uids) hash equally.  Equal keys imply the systems are identical up to
  a variable bijection, and (un)satisfiability is invariant under
  bijective renaming, so caching on the key is sound.
* **An LRU cache** — :class:`SolverCache` memoizes ``unsat`` verdicts
  per ``(backend, canonical key)`` with hit/miss/eviction counters.
* **A portfolio backend** — :class:`PortfolioSolver` screens each query
  with the cheap ``interval`` propagator, then escalates ``fourier`` →
  ``omega``, recording which tier decided; and
  :class:`DifferentialSolver` cross-checks any UNSAT verdict against
  the complete ``omega`` backend, raising :class:`BackendDisagreement`
  on a soundness violation (the discipline of *Practical Range
  Refinement Types with Inference*).

:class:`SolverTelemetry` aggregates queries, per-tier decisions and
wall time, and cache statistics; :meth:`repro.api.CheckReport.summary`
and the bench harness surface it.
"""

from __future__ import annotations

import json
import threading
import time
from collections import OrderedDict
from dataclasses import dataclass, field
from functools import lru_cache
from typing import Callable, Iterator, Sequence

from repro.indices.linear import Atom
from repro.solver import fourier, interval, omega
from repro.solver.backends import Backend, get_backend
from repro.solver.budget import current_budget

#: A fully renamed atom: ``(rel, const, ((var_id, coeff), ...))``.
CanonicalAtom = tuple[str, int, tuple[tuple[int, int], ...]]
CanonicalKey = tuple[CanonicalAtom, ...]


class BackendDisagreement(AssertionError):
    """Two backends returned contradictory verdicts where completeness
    guarantees one of them (a soundness bug — never swallow this)."""


# ---------------------------------------------------------------------------
# Canonical goal keys
# ---------------------------------------------------------------------------


def canonical_key(atoms: Sequence[Atom]) -> CanonicalKey:
    """A hashable normal form of an atom conjunction.

    Variables are renamed to consecutive integers by first occurrence
    while scanning the atoms in a name-independent order (sorted by
    relation, constant, and coefficient multiset); the renamed atoms
    are then sorted.  The construction is a deterministic function of
    the input, so equal keys reconstruct the *same* renamed system —
    i.e. the originals agree up to a variable bijection, under which
    integer satisfiability is invariant.  Alpha-equivalent systems
    (fresh evar uids, renamed rigids) therefore share a cache line.
    """

    def signature(atom: Atom) -> tuple:
        return (
            atom.rel,
            atom.lhs.const,
            tuple(sorted(c for _, c in atom.lhs.coeffs)),
        )

    ordered = sorted(atoms, key=signature)
    ids: dict[object, int] = {}
    renamed: list[CanonicalAtom] = []
    for atom in ordered:
        coeffs = []
        for var, coeff in atom.lhs.coeffs:
            if var not in ids:
                ids[var] = len(ids)
            coeffs.append((ids[var], coeff))
        coeffs.sort()
        renamed.append((atom.rel, atom.lhs.const, tuple(coeffs)))
    return tuple(sorted(renamed))


@lru_cache(maxsize=8192)
def _canonical_key_cached(atoms: tuple[Atom, ...]) -> CanonicalKey:
    return canonical_key(atoms)


def memoized_canonical_key(atoms: Sequence[Atom]) -> CanonicalKey:
    """:func:`canonical_key`, memoized on the atom tuple.

    With hash-consed terms an :class:`Atom`'s hash bottoms out in O(1)
    identity hashes of its variables, so the lookup is cheap; repeated
    queries over the same goal shapes (warm driver runs, shared prelude
    obligations) skip the sort-and-rename entirely.  Process-local
    only — the persistent codec (:func:`encode_key`) always receives
    the content-derived key itself, never anything id-dependent.
    """
    return _canonical_key_cached(tuple(atoms))


def canonical_key_stats() -> tuple[int, int, int]:
    """(hits, misses, evictions) of the canonical-key memo.

    The lru does not count evictions directly, but every miss inserts
    exactly one entry, so ``misses - currsize`` is the number evicted
    since the last clear.
    """
    info = _canonical_key_cached.cache_info()
    return info.hits, info.misses, info.misses - info.currsize


def encode_key(key: CanonicalKey) -> str:
    """A stable text form of a canonical key (JSON of nested lists) —
    the on-disk representation used by the driver's persistent cache."""
    return json.dumps(key, separators=(",", ":"))


def decode_key(text: str) -> CanonicalKey:
    """Inverse of :func:`encode_key`.

    Raises :class:`ValueError` on anything that does not reconstruct a
    well-formed key — corrupted cache entries must be *dropped*, never
    trusted.
    """
    try:
        data = json.loads(text)
    except json.JSONDecodeError as exc:
        raise ValueError(f"undecodable key: {text!r}") from exc
    if not isinstance(data, list):
        raise ValueError(f"malformed key: {text!r}")
    atoms: list[CanonicalAtom] = []
    for entry in data:
        if not (isinstance(entry, list) and len(entry) == 3):
            raise ValueError(f"malformed atom in key: {text!r}")
        rel, const, coeffs = entry
        if not (isinstance(rel, str) and isinstance(const, int)
                and isinstance(coeffs, list)):
            raise ValueError(f"malformed atom in key: {text!r}")
        pairs = []
        for pair in coeffs:
            if not (isinstance(pair, list) and len(pair) == 2
                    and all(isinstance(x, int) for x in pair)):
                raise ValueError(f"malformed coefficient in key: {text!r}")
            pairs.append((pair[0], pair[1]))
        atoms.append((rel, const, tuple(pairs)))
    return tuple(atoms)


# ---------------------------------------------------------------------------
# Memoization
# ---------------------------------------------------------------------------


class SolverCache:
    """A bounded LRU of ``unsat`` verdicts keyed on canonical form.

    Entries are namespaced by backend name — different backends give
    different (one-sided) answers to the same system, so they must not
    share verdicts.  Counters accumulate over the cache's lifetime.

    All operations are guarded by a lock so one cache can back the
    driver's concurrent workers; the uncontended acquire is trivially
    cheap next to any backend call.
    """

    def __init__(self, maxsize: int = 4096) -> None:
        self.maxsize = maxsize
        self._entries: OrderedDict[tuple[str, CanonicalKey], bool] = OrderedDict()
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        #: Entries that answered at least one lookup — the persistent
        #: store bumps its cross-run hit counts from this set.
        self._hit_keys: set[tuple[str, CanonicalKey]] = set()

    def __len__(self) -> int:
        return len(self._entries)

    def lookup(self, backend: str, key: CanonicalKey) -> bool | None:
        """The cached verdict, or ``None`` on a miss."""
        entry = (backend, key)
        with self._lock:
            if entry not in self._entries:
                self.misses += 1
                return None
            self._entries.move_to_end(entry)
            self.hits += 1
            self._hit_keys.add(entry)
            return self._entries[entry]

    def store(self, backend: str, key: CanonicalKey, verdict: bool) -> int:
        """Record a verdict; returns how many entries were evicted."""
        with self._lock:
            self._entries[(backend, key)] = verdict
            self._entries.move_to_end((backend, key))
            evicted = 0
            while len(self._entries) > self.maxsize:
                self._entries.popitem(last=False)
                self.evictions += 1
                evicted += 1
            return evicted

    def preload(self, backend: str, key: CanonicalKey, verdict: bool) -> None:
        """Seed one entry without touching the hit/miss/eviction
        counters (used when warming from the driver's on-disk cache)."""
        with self._lock:
            self._entries[(backend, key)] = verdict
            while len(self._entries) > self.maxsize:
                self._entries.popitem(last=False)

    def entries(self) -> Iterator[tuple[str, CanonicalKey, bool]]:
        """Snapshot of the cache contents, LRU-first (for persistence)."""
        with self._lock:
            snapshot = list(self._entries.items())
        for (backend, key), verdict in snapshot:
            yield backend, key, verdict

    def hit_keys(self) -> set[tuple[str, CanonicalKey]]:
        """Snapshot of the ``(backend, key)`` pairs that answered at
        least one lookup (hits on since-evicted entries included)."""
        with self._lock:
            return set(self._hit_keys)

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()
            self._hit_keys.clear()


@dataclass
class SolverTelemetry:
    """Aggregate solver-layer statistics for one run (or one shared
    accumulation — pass the same instance to several checks)."""

    #: Backend queries issued (cache hits included).
    queries: int = 0
    #: Queries answered UNSAT.
    unsat: int = 0
    #: Queries answered from the cache without running any backend.
    cache_hits: int = 0
    cache_misses: int = 0
    cache_evictions: int = 0
    #: tier/backend name -> number of queries it decided.
    decisions: dict[str, int] = field(default_factory=dict)
    #: tier/backend name -> wall-clock seconds spent inside it.
    tier_seconds: dict[str, float] = field(default_factory=dict)
    #: Goals degraded to 'unknown' on budget/deadline exhaustion
    #: (fail-soft: their run-time checks are kept).
    budget_exhausted: int = 0
    #: Goals whose backend crash was contained (reported unproved).
    contained_crashes: int = 0
    #: Goal cases routed through the relevancy-slicing layer.
    sliced_queries: int = 0
    #: Atoms entering the slicing layer vs. atoms in the
    #: conclusion-connected slice (the classic relevancy measure).
    atoms_before: int = 0
    atoms_after: int = 0
    #: Components refuted by subsumption against a recorded core,
    #: without any backend call.
    subsumption_hits: int = 0
    #: Fourier solves resumed from a presolved shared hypothesis prefix.
    prefix_reuses: int = 0

    def record_decision(self, tier: str, elapsed: float, decided: bool) -> None:
        self.tier_seconds[tier] = self.tier_seconds.get(tier, 0.0) + elapsed
        if decided:
            self.decisions[tier] = self.decisions.get(tier, 0) + 1

    def merge(self, other: "SolverTelemetry") -> None:
        """Fold another telemetry into this one (the parallel driver
        gives each worker thread its own instance, then merges — no
        counter races, no locks on the hot path)."""
        self.queries += other.queries
        self.unsat += other.unsat
        self.cache_hits += other.cache_hits
        self.cache_misses += other.cache_misses
        self.cache_evictions += other.cache_evictions
        self.budget_exhausted += other.budget_exhausted
        self.contained_crashes += other.contained_crashes
        self.sliced_queries += other.sliced_queries
        self.atoms_before += other.atoms_before
        self.atoms_after += other.atoms_after
        self.subsumption_hits += other.subsumption_hits
        self.prefix_reuses += other.prefix_reuses
        for tier, count in other.decisions.items():
            self.decisions[tier] = self.decisions.get(tier, 0) + count
        for tier, seconds in other.tier_seconds.items():
            self.tier_seconds[tier] = self.tier_seconds.get(tier, 0.0) + seconds

    def lines(self) -> list[str]:
        """Human-readable summary block (``CheckReport.summary`` and
        the CLI append these)."""
        out = [
            f"solver queries:   {self.queries} ({self.unsat} unsat), cache "
            f"{self.cache_hits} hit(s) / {self.cache_misses} miss(es) / "
            f"{self.cache_evictions} eviction(s)"
        ]
        for tier in sorted(set(self.decisions) | set(self.tier_seconds)):
            decided = self.decisions.get(tier, 0)
            seconds = self.tier_seconds.get(tier, 0.0)
            out.append(
                f"  tier {tier:<10} decided {decided:>5} "
                f"in {seconds * 1000:.2f} ms"
            )
        if self.sliced_queries:
            out.append(
                f"slicing:          {self.sliced_queries} case(s), atoms "
                f"{self.atoms_before} -> {self.atoms_after}, "
                f"{self.subsumption_hits} subsumption hit(s), "
                f"{self.prefix_reuses} prefix reuse(s)"
            )
        if self.budget_exhausted or self.contained_crashes:
            out.append(
                f"fail-soft:        {self.budget_exhausted} "
                f"budget-exhausted goal(s), {self.contained_crashes} "
                f"contained crash(es) (checks kept)"
            )
        return out


# ---------------------------------------------------------------------------
# Portfolio and differential solvers
# ---------------------------------------------------------------------------

#: The escalation ladder: cheap and incomplete first, exact last.
PORTFOLIO_TIERS: tuple[tuple[str, Callable[[Sequence[Atom]], bool]], ...] = (
    ("interval", lambda atoms: interval.interval_unsat(atoms)),
    ("fourier", lambda atoms: fourier.fourier_unsat(atoms)),
    ("omega", lambda atoms: omega.omega_unsat(atoms)),
)


class PortfolioSolver:
    """Tiered escalation over the registered backends.

    Soundness: every tier is individually sound for UNSAT, so the first
    ``True`` can be trusted; a final ``False`` is as strong as the last
    tier's (``omega``: complete up to its work budget).  Telemetry
    records which tier decided each query and where the time went.
    """

    def __init__(
        self,
        telemetry: SolverTelemetry | None = None,
        tiers: Sequence[tuple[str, Callable[[Sequence[Atom]], bool]]] = PORTFOLIO_TIERS,
    ) -> None:
        self.telemetry = telemetry if telemetry is not None else SolverTelemetry()
        self.tiers = tuple(tiers)

    def unsat(self, atoms: Sequence[Atom]) -> bool:
        budget = current_budget()
        last = len(self.tiers) - 1
        for position, (name, tier_unsat) in enumerate(self.tiers):
            if budget is not None and budget.exhausted:
                break  # every remaining tier would abort on first spend
            started = time.perf_counter()
            verdict = tier_unsat(atoms)
            elapsed = time.perf_counter() - started
            decided = verdict or position == last
            self.telemetry.record_decision(name, elapsed, decided)
            if verdict:
                return True
        return False


class DifferentialSolver:
    """Validation mode: answer with ``primary``, but confirm every
    UNSAT verdict with the integer-complete ``omega`` backend.

    ``omega`` proving the system *satisfiable* after another backend
    declared it unsatisfiable is a soundness violation — the exact
    failure that would silently delete a needed bound check — and
    raises :class:`BackendDisagreement`.  An exhausted omega work
    budget leaves the verdict unconfirmed but is not a disagreement.
    """

    def __init__(
        self,
        primary: Backend | str = "fourier",
        telemetry: SolverTelemetry | None = None,
    ) -> None:
        self.primary = get_backend(primary) if isinstance(primary, str) else primary
        self.telemetry = telemetry if telemetry is not None else SolverTelemetry()

    def unsat(self, atoms: Sequence[Atom]) -> bool:
        started = time.perf_counter()
        verdict = self.primary.unsat(atoms)
        self.telemetry.record_decision(
            self.primary.name, time.perf_counter() - started, True
        )
        if not verdict:
            return False
        started = time.perf_counter()
        try:
            confirmed = not omega.omega_sat(atoms)
        except omega.OmegaBudgetExceeded:
            confirmed = True  # unconfirmable, not contradicted
        self.telemetry.record_decision(
            "omega-confirm", time.perf_counter() - started, False
        )
        if not confirmed:
            raise BackendDisagreement(
                f"backend {self.primary.name!r} declared UNSAT but omega "
                f"found the system satisfiable: {'; '.join(map(str, atoms))}"
            )
        return True


# ---------------------------------------------------------------------------
# Instrumentation wrapper
# ---------------------------------------------------------------------------


def instrument(
    backend: Backend,
    telemetry: SolverTelemetry | None = None,
    cache: SolverCache | None = None,
) -> Backend:
    """Wrap ``backend`` with query counting and (optionally) the
    memoization cache.  The wrapper is transparent: same ``name`` and
    completeness flag, so failure messages and registry behaviour are
    unchanged."""
    telemetry = telemetry if telemetry is not None else SolverTelemetry()

    def unsat(atoms: Sequence[Atom]) -> bool:
        telemetry.queries += 1
        key: CanonicalKey | None = None
        if cache is not None:
            key = memoized_canonical_key(atoms)
            hit = cache.lookup(backend.name, key)
            if hit is not None:
                telemetry.cache_hits += 1
                if hit:
                    telemetry.unsat += 1
                return hit
            telemetry.cache_misses += 1
        verdict = backend.unsat(atoms)
        if cache is not None and key is not None:
            # A False computed under an exhausted budget means "query
            # aborted", not "not refutable" — caching it would pin the
            # degraded answer for later, fully-budgeted queries.
            ambient = current_budget()
            if verdict or ambient is None or not ambient.exhausted:
                telemetry.cache_evictions += cache.store(backend.name, key, verdict)
        if verdict:
            telemetry.unsat += 1
        return verdict

    return Backend(backend.name, unsat, backend.integer_complete)


# ---------------------------------------------------------------------------
# Module-level defaults (used by the backend registry)
# ---------------------------------------------------------------------------

#: Shared state behind ``get_backend("portfolio")`` /
#: ``get_backend("differential")``: repeated corpus checks in one
#: process stop re-solving identical goals.
GLOBAL_CACHE = SolverCache(maxsize=8192)
GLOBAL_TELEMETRY = SolverTelemetry()

_DEFAULT_PORTFOLIO: Backend | None = None
_DEFAULT_DIFFERENTIAL: Backend | None = None


def default_portfolio() -> Backend:
    global _DEFAULT_PORTFOLIO
    if _DEFAULT_PORTFOLIO is None:
        solver = PortfolioSolver(telemetry=GLOBAL_TELEMETRY)
        _DEFAULT_PORTFOLIO = instrument(
            Backend("portfolio", solver.unsat, integer_complete=True),
            GLOBAL_TELEMETRY,
            GLOBAL_CACHE,
        )
    return _DEFAULT_PORTFOLIO


def default_differential() -> Backend:
    global _DEFAULT_DIFFERENTIAL
    if _DEFAULT_DIFFERENTIAL is None:
        solver = DifferentialSolver("fourier", telemetry=GLOBAL_TELEMETRY)
        _DEFAULT_DIFFERENTIAL = instrument(
            Backend("differential", solver.unsat),
            GLOBAL_TELEMETRY,
            GLOBAL_CACHE,
        )
    return _DEFAULT_DIFFERENTIAL


def reset_global_state() -> None:
    """Fresh global cache/telemetry (test isolation)."""
    _canonical_key_cached.cache_clear()
    GLOBAL_CACHE.clear()
    GLOBAL_CACHE.hits = GLOBAL_CACHE.misses = GLOBAL_CACHE.evictions = 0
    GLOBAL_TELEMETRY.queries = GLOBAL_TELEMETRY.unsat = 0
    GLOBAL_TELEMETRY.cache_hits = GLOBAL_TELEMETRY.cache_misses = 0
    GLOBAL_TELEMETRY.cache_evictions = 0
    GLOBAL_TELEMETRY.budget_exhausted = GLOBAL_TELEMETRY.contained_crashes = 0
    GLOBAL_TELEMETRY.sliced_queries = GLOBAL_TELEMETRY.atoms_before = 0
    GLOBAL_TELEMETRY.atoms_after = GLOBAL_TELEMETRY.subsumption_hits = 0
    GLOBAL_TELEMETRY.prefix_reuses = 0
    GLOBAL_TELEMETRY.decisions.clear()
    GLOBAL_TELEMETRY.tier_seconds.clear()
