"""Interval (bounds-propagation) backend, in the spirit of SUP-INF.

Section 3.2 lists "the SUP-INF method (Shostak 1977)" among the
alternatives to Fourier elimination.  This backend implements the
closely related *bounds propagation* discipline: every variable carries
an integer interval, and each linear inequality repeatedly tightens the
interval of each of its variables given the others' current bounds,
with integer rounding (ceil/floor) built in.  An empty interval proves
unsatisfiability.  (Like every backend, it consumes ``Atom`` systems
from the memoized linearization layer over the interned IR; repeated
goals never re-translate their comparisons.)

All arithmetic is exact: bounds are Python ``int`` (``None`` meaning
unbounded), never floats.  A float in the bound computation would lose
precision beyond 2**53 and can *strengthen* a bound incorrectly —
declaring a satisfiable system UNSAT, exactly the failure mode the
"trustworthy ``True``" backend contract forbids (a wrong UNSAT deletes
a run-time bound check the program needs).

Properties:

* sound for UNSAT (like every backend here);
* weaker than Fourier elimination — it reasons one constraint at a
  time and cannot combine constraints (e.g. ``x <= y /\\ y <= z /\\
  z <= x - 1`` needs a transitive chain it never forms) — but very
  fast, which is why real solvers use it as a preprocessing step (and
  why it is the first tier of :mod:`repro.solver.portfolio`);
* iteration-capped, since mutually increasing bounds may otherwise
  tighten forever (``x >= y + 1 /\\ y >= x + 1`` walks to infinity).

Included as the fourth point in the solver ablation: it shows what the
paper would have lost by choosing an even simpler method than Fourier.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.indices.linear import Atom, LinComb, LinVar
from repro.solver.budget import Budget, BudgetExhausted, resolve_budget


@dataclass
class IntervalStats:
    tightenings: int = 0
    passes: int = 0


def _ceil_div(num: int, den: int) -> int:
    """Exact ``ceil(num / den)`` for ``den > 0`` (no float round-trip)."""
    return -((-num) // den)


def interval_unsat(
    atoms: Sequence[Atom],
    max_passes: int = 64,
    stats: IntervalStats | None = None,
    budget: Budget | None = None,
) -> bool:
    """``True`` iff bounds propagation derives an empty interval.

    Each propagation pass spends one budget step per inequality;
    exhaustion degrades to ``False`` ("unknown"), like the pass cap.
    """
    budget = resolve_budget(budget)
    try:
        return _interval_unsat(atoms, max_passes, stats, budget)
    except BudgetExhausted:
        return False


def _interval_unsat(
    atoms: Sequence[Atom],
    max_passes: int,
    stats: IntervalStats | None,
    budget: Budget | None,
) -> bool:
    stats = stats if stats is not None else IntervalStats()

    ineqs: list[LinComb] = []
    for atom in atoms:
        if atom.rel == "=":
            ineqs.append(atom.lhs)
            ineqs.append(-atom.lhs)
        else:
            ineqs.append(atom.lhs)

    # None = unbounded in that direction; otherwise an exact int.
    lo: dict[LinVar, int | None] = {}
    hi: dict[LinVar, int | None] = {}
    for iq in ineqs:
        for var, _ in iq.coeffs:
            lo.setdefault(var, None)
            hi.setdefault(var, None)

    for _ in range(max_passes):
        stats.passes += 1
        changed = False
        for iq in ineqs:
            if budget is not None:
                budget.spend()
            if iq.is_const():
                if iq.const < 0:
                    return True
                continue
            # sum(a_i x_i) + c >= 0; bound each variable by the rest.
            for var, coeff in iq.coeffs:
                # rest_max = sup of sum_{j != i} a_j x_j + c
                rest_max: int | None = iq.const
                for other, a in iq.coeffs:
                    if other == var:
                        continue
                    limit = hi[other] if a > 0 else lo[other]
                    if limit is None:
                        rest_max = None
                        break
                    rest_max += a * limit
                if rest_max is None:
                    continue
                # coeff * var >= -rest_max
                if coeff > 0:
                    bound = _ceil_div(-rest_max, coeff)
                    current = lo[var]
                    if current is None or bound > current:
                        lo[var] = bound
                        changed = True
                        stats.tightenings += 1
                else:
                    bound = rest_max // -coeff  # floor division, exact
                    current = hi[var]
                    if current is None or bound < current:
                        hi[var] = bound
                        changed = True
                        stats.tightenings += 1
                var_lo, var_hi = lo[var], hi[var]
                if var_lo is not None and var_hi is not None and var_lo > var_hi:
                    return True
        if not changed:
            return False
    return False  # iteration cap: unknown, report "not proven"
