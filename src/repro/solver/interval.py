"""Interval (bounds-propagation) backend, in the spirit of SUP-INF.

Section 3.2 lists "the SUP-INF method (Shostak 1977)" among the
alternatives to Fourier elimination.  This backend implements the
closely related *bounds propagation* discipline: every variable carries
an integer interval, and each linear inequality repeatedly tightens the
interval of each of its variables given the others' current bounds,
with integer rounding (ceil/floor) built in.  An empty interval proves
unsatisfiability.

Properties:

* sound for UNSAT (like every backend here);
* weaker than Fourier elimination — it reasons one constraint at a
  time and cannot combine constraints (e.g. ``x <= y /\\ y <= z /\\
  z <= x - 1`` needs a transitive chain it never forms) — but very
  fast, which is why real solvers use it as a preprocding step;
* iteration-capped, since mutually increasing bounds may otherwise
  tighten forever (``x >= y + 1 /\\ y >= x + 1`` walks to infinity).

Included as the fourth point in the solver ablation: it shows what the
paper would have lost by choosing an even simpler method than Fourier.
"""

from __future__ import annotations

from dataclasses import dataclass
from math import ceil, floor, inf
from typing import Sequence

from repro.indices.linear import Atom, LinComb, LinVar


@dataclass
class IntervalStats:
    tightenings: int = 0
    passes: int = 0


def interval_unsat(
    atoms: Sequence[Atom],
    max_passes: int = 64,
    stats: IntervalStats | None = None,
) -> bool:
    """``True`` iff bounds propagation derives an empty interval."""
    stats = stats if stats is not None else IntervalStats()

    ineqs: list[LinComb] = []
    for atom in atoms:
        if atom.rel == "=":
            ineqs.append(atom.lhs)
            ineqs.append(-atom.lhs)
        else:
            ineqs.append(atom.lhs)

    lo: dict[LinVar, float] = {}
    hi: dict[LinVar, float] = {}
    for iq in ineqs:
        for var, _ in iq.coeffs:
            lo.setdefault(var, -inf)
            hi.setdefault(var, inf)

    for _ in range(max_passes):
        stats.passes += 1
        changed = False
        for iq in ineqs:
            if iq.is_const():
                if iq.const < 0:
                    return True
                continue
            # sum(a_i x_i) + c >= 0; bound each variable by the rest.
            for var, coeff in iq.coeffs:
                # rest_max = sup of sum_{j != i} a_j x_j + c
                rest_max = float(iq.const)
                for other, a in iq.coeffs:
                    if other == var:
                        continue
                    contrib = a * hi[other] if a > 0 else a * lo[other]
                    rest_max += contrib
                    if rest_max == inf:
                        break
                if rest_max == inf:
                    continue
                if rest_max == -inf:
                    return True  # the rest alone is impossibly small
                # coeff * var >= -rest_max
                if coeff > 0:
                    bound = ceil(-rest_max / coeff)
                    if bound > lo[var]:
                        lo[var] = bound
                        changed = True
                        stats.tightenings += 1
                else:
                    bound = floor(rest_max / -coeff)
                    if bound < hi[var]:
                        hi[var] = bound
                        changed = True
                        stats.tightenings += 1
                if lo[var] > hi[var]:
                    return True
        if not changed:
            return False
    return False  # iteration cap: unknown, report "not proven"
