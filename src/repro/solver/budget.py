"""Unified resource governance for the solver stack (fail-soft policy).

The paper's core contract is graceful degradation: an obligation the
solver cannot discharge *keeps its run-time check* — it never crashes
the checker or poisons other goals (Section 3; Tables 2/3 count exactly
the checks that survive).  Before this module existed only the Omega
test carried a work budget; Fourier's case splits and the interval
propagator's tightening loops relied on ad-hoc caps, and exhaustion
surfaced inconsistently.

A :class:`Budget` is a *per-goal* resource envelope shared by every
decision backend that works on that goal:

* a **step budget** — an abstract work counter each backend decrements
  for its unit of work (an elimination pair, a propagation pass, a
  simplex pivot, a DNF case, an Omega shadow); and
* a **wall-clock deadline** — an absolute ``time.perf_counter`` bound,
  polled every :data:`_DEADLINE_STRIDE` steps so the common path stays
  one integer decrement.

Exhaustion raises :class:`BudgetExhausted` *inside* the solver layer;
every backend entry point catches it and returns ``False`` ("not proven
unsatisfiable"), and :func:`repro.solver.simplify.prove_goal` turns the
condition into a first-class *unknown* verdict — the goal is reported
unproved with a ``solver budget exhausted`` reason and its run-time
check is kept.  No budget condition ever escapes as an exception to
``check``/``check-corpus`` callers.

Budgets nest: :meth:`Budget.sub` creates a child whose spends forward
to the parent, so the Omega test keeps its classic per-call step cap
(:class:`repro.solver.omega.OmegaConfig.max_steps`) while still drawing
down the goal-level envelope.

Threading: backends receive the budget either as an explicit ``budget``
argument or — when called through wrappers whose signatures predate
budgets (the :class:`~repro.solver.backends.Backend` callable, the
portfolio tiers, the memoization layer) — from the *ambient* budget
installed by :func:`use_budget`.  The ambient slot is a
``threading.local``, so the parallel driver's workers never observe
each other's budgets.
"""

from __future__ import annotations

import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Iterator

#: How many steps may pass between deadline polls.  Checking the clock
#: on every spend would double the cost of the hot decrement; one poll
#: per stride bounds the overshoot to a few microseconds of solver work.
_DEADLINE_STRIDE = 256


class BudgetExhausted(Exception):
    """The per-goal work budget or deadline ran out.

    Backends catch this and answer ``False`` ("unknown");
    ``prove_goal`` reports the goal unproved with the recorded reason.
    ``kind`` is ``"steps"`` or ``"deadline"``.
    """

    def __init__(self, kind: str) -> None:
        super().__init__(kind)
        self.kind = kind


@dataclass(frozen=True)
class SolverLimits:
    """Per-goal resource knobs (CLI: ``--budget`` / ``--goal-timeout``).

    ``max_steps`` bounds the abstract solver work spent on one proof
    goal across *all* backend calls it triggers (every portfolio tier,
    every DNF case); ``None`` disables the step bound.  ``goal_timeout``
    is a wall-clock bound in seconds for one goal; ``None`` disables
    it.  The defaults are generous enough that every goal of the
    bundled corpus decides identically with or without them — budgets
    change verdicts only on pathological inputs, where the changed
    verdict is exactly the degradation the paper specifies (check
    kept).
    """

    max_steps: int | None = 2_000_000
    goal_timeout: float | None = None

    @staticmethod
    def unlimited() -> "SolverLimits":
        return SolverLimits(max_steps=None, goal_timeout=None)


#: The default envelope ``prove_goal`` applies when the caller passes
#: no explicit limits.
DEFAULT_LIMITS = SolverLimits()


class Budget:
    """A step counter plus an optional absolute deadline.

    Not locked: a budget belongs to one goal being proved on one
    thread.  (The driver's workers each prove whole goals; budgets are
    never shared across threads.)
    """

    __slots__ = ("remaining", "deadline", "parent", "exhausted_kind", "_tick")

    def __init__(
        self,
        max_steps: int | None = None,
        deadline: float | None = None,
        parent: "Budget | None" = None,
    ) -> None:
        self.remaining = max_steps
        self.deadline = deadline
        self.parent = parent
        #: ``None`` until the budget ran out; then ``"steps"`` or
        #: ``"deadline"`` (sticky — later spends keep raising).
        self.exhausted_kind: str | None = None
        self._tick = 0

    @classmethod
    def start(cls, limits: SolverLimits | None = None) -> "Budget":
        """A fresh budget for one goal, deadline anchored at *now*."""
        limits = limits if limits is not None else DEFAULT_LIMITS
        deadline = (
            time.perf_counter() + limits.goal_timeout
            if limits.goal_timeout is not None
            else None
        )
        return cls(limits.max_steps, deadline)

    def sub(self, max_steps: int | None) -> "Budget":
        """A child budget with its own step cap; spends forward to this
        budget (and its deadline still applies through the parent
        chain).  Used by the Omega test to keep its per-call cap."""
        return Budget(max_steps, None, parent=self)

    @property
    def exhausted(self) -> bool:
        if self.exhausted_kind is not None:
            return True
        return self.parent.exhausted if self.parent is not None else False

    def exhaust(self, kind: str) -> None:
        """Mark this budget spent and raise — used both internally and
        by backends mapping their own structural limits (e.g. the Omega
        test's recursion-depth cap) onto the budget verdict."""
        self.exhausted_kind = kind
        raise BudgetExhausted(kind)

    def spend(self, amount: int = 1) -> None:
        """Consume ``amount`` units of work; raise on exhaustion."""
        if self.exhausted_kind is not None:
            raise BudgetExhausted(self.exhausted_kind)
        if self.remaining is not None:
            self.remaining -= amount
            if self.remaining < 0:
                self.exhaust("steps")
        self._tick += amount
        if self._tick >= _DEADLINE_STRIDE:
            self._tick = 0
            self.checkpoint()
        if self.parent is not None:
            self.parent.spend(amount)

    def checkpoint(self) -> None:
        """Poll the deadline now (also called between backend calls,
        where overshoot would otherwise accumulate)."""
        if self.exhausted_kind is not None:
            raise BudgetExhausted(self.exhausted_kind)
        if self.deadline is not None and time.perf_counter() > self.deadline:
            self.exhaust("deadline")
        if self.parent is not None:
            self.parent.checkpoint()

    def describe(self) -> str:
        """Human-readable exhaustion reason for goal results."""
        kind = self.exhausted_kind
        if kind is None and self.parent is not None:
            kind = self.parent.exhausted_kind
        if kind == "deadline":
            return "goal timeout exceeded"
        return "step budget exhausted"


# ---------------------------------------------------------------------------
# Ambient budget
# ---------------------------------------------------------------------------

_AMBIENT = threading.local()


def current_budget() -> Budget | None:
    """The budget installed by the innermost :func:`use_budget`, if
    any.  Backends fall back to this when no explicit ``budget``
    argument reaches them (the ``Backend`` callable signature carries
    atoms only)."""
    return getattr(_AMBIENT, "budget", None)


@contextmanager
def use_budget(budget: Budget | None) -> Iterator[Budget | None]:
    """Install ``budget`` as the ambient budget for this thread."""
    previous = getattr(_AMBIENT, "budget", None)
    _AMBIENT.budget = budget
    try:
        yield budget
    finally:
        _AMBIENT.budget = previous


def resolve_budget(budget: Budget | None) -> Budget | None:
    """The budget a backend should spend from: the explicit one when
    given, else the ambient one, else ``None`` (unlimited)."""
    return budget if budget is not None else current_budget()
