"""Rational feasibility by the simplex method (baseline backend).

Section 3.2 mentions the simplex method as one of the alternatives to
Fourier elimination.  This module implements a small exact-arithmetic
(``fractions.Fraction``) phase-1 simplex, used by the ablation
benchmarks as the "rational-only" baseline: it is complete over the
rationals but, lacking any integer reasoning, proves strictly fewer
constraints than Fourier-with-tightening or the Omega test (any system
with a rational but no integer point slips through).

The LP is set up in standard computational form.  Free variables are
split into differences of nonnegatives; every inequality
``lhs >= 0`` gains a surplus variable; artificial variables seed a
feasible basis whose total is minimized (Bland's rule guarantees
termination).
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from typing import Sequence

from repro.indices.linear import Atom, LinVar
from repro.solver.budget import Budget, BudgetExhausted, resolve_budget


@dataclass
class SimplexStats:
    pivots: int = 0


def _build_rows(
    atoms: Sequence[Atom],
) -> tuple[list[list[Fraction]], list[Fraction], int] | None:
    """Build equality rows ``A x = b`` with ``b >= 0`` over nonnegative
    variables.  Returns (rows, rhs, num_structural) or ``None`` when an
    atom is trivially contradictory."""
    variables = sorted({v for atom in atoms for v in atom.variables()}, key=repr)
    index: dict[LinVar, int] = {v: i for i, v in enumerate(variables)}
    n_free = len(variables)

    surplus_needed = sum(1 for atom in atoms if atom.rel == ">=")
    n_cols = 2 * n_free + surplus_needed  # x+ / x- pairs then surplus
    rows: list[list[Fraction]] = []
    rhs: list[Fraction] = []
    surplus_at = 2 * n_free

    for atom in atoms:
        if atom.lhs.is_const():
            if atom.is_trivially_false():
                return None
            continue
        row = [Fraction(0)] * n_cols
        for var, coeff in atom.lhs.coeffs:
            j = index[var]
            row[2 * j] += Fraction(coeff)
            row[2 * j + 1] -= Fraction(coeff)
        b = Fraction(-atom.lhs.const)  # coeffs . x (+ surplus) = -const
        if atom.rel == ">=":
            row[surplus_at] = Fraction(-1)
            surplus_at += 1
        if b < 0:
            row = [-c for c in row]
            b = -b
        rows.append(row)
        rhs.append(b)
    return rows, rhs, n_cols


def simplex_feasible(
    atoms: Sequence[Atom],
    stats: SimplexStats | None = None,
    budget: Budget | None = None,
) -> bool:
    """Does the conjunction of atoms admit a *rational* solution?

    Each pivot spends one budget step; exhaustion raises
    :class:`~repro.solver.budget.BudgetExhausted` (``simplex_unsat``
    maps it to the conservative ``False``).
    """
    budget = resolve_budget(budget)
    stats = stats if stats is not None else SimplexStats()
    built = _build_rows(atoms)
    if built is None:
        return False
    rows, rhs, n_struct = built
    m = len(rows)
    if m == 0:
        return True

    # Phase-1 tableau: structural columns, artificial columns, rhs.
    n_total = n_struct + m
    tableau = [row + [Fraction(0)] * m + [rhs[i]] for i, row in enumerate(rows)]
    for i in range(m):
        tableau[i][n_struct + i] = Fraction(1)
    basis = [n_struct + i for i in range(m)]

    # Objective: minimize sum of artificials. Cost row holds reduced
    # costs of -(sum of artificial rows) restricted to non-artificials.
    cost = [Fraction(0)] * (n_total + 1)
    for i in range(m):
        for j in range(n_total + 1):
            cost[j] -= tableau[i][j]
    # Reduced cost of a basic artificial is c_j - z_j = 1 - 1 = 0.
    for i in range(m):
        cost[n_struct + i] += 1

    while True:
        # Bland's rule: entering column = lowest index with negative cost.
        entering = next(
            (j for j in range(n_total) if cost[j] < 0),
            None,
        )
        if entering is None:
            break
        # Ratio test, ties by lowest basis variable index (Bland).
        leaving = None
        best_ratio: Fraction | None = None
        for i in range(m):
            coeff = tableau[i][entering]
            if coeff > 0:
                ratio = tableau[i][n_total] / coeff
                if (
                    best_ratio is None
                    or ratio < best_ratio
                    or (ratio == best_ratio and basis[i] < basis[leaving])
                ):
                    best_ratio = ratio
                    leaving = i
        if leaving is None:
            # Unbounded phase-1 objective cannot happen (bounded below
            # by 0); defensively declare feasibility unknown -> feasible.
            return True
        stats.pivots += 1
        if budget is not None:
            budget.spend()
        _pivot(tableau, cost, basis, leaving, entering, n_total)

    # Feasible iff the artificial total is zero.
    objective = -cost[n_total]
    return objective == 0


def _pivot(
    tableau: list[list[Fraction]],
    cost: list[Fraction],
    basis: list[int],
    row: int,
    col: int,
    n_total: int,
) -> None:
    pivot_val = tableau[row][col]
    tableau[row] = [c / pivot_val for c in tableau[row]]
    for i, r in enumerate(tableau):
        if i != row and r[col] != 0:
            factor = r[col]
            tableau[i] = [c - factor * p for c, p in zip(r, tableau[row])]
    if cost[col] != 0:
        factor = cost[col]
        for j in range(n_total + 1):
            cost[j] -= factor * tableau[row][j]
    basis[row] = col


def simplex_unsat(
    atoms: Sequence[Atom],
    stats: SimplexStats | None = None,
    budget: Budget | None = None,
) -> bool:
    """Backend entry point: ``True`` iff rationally infeasible.

    Budget exhaustion conservatively reports ``False`` ("unknown").
    """
    try:
        return not simplex_feasible(atoms, stats=stats, budget=budget)
    except BudgetExhausted:
        return False
