"""Constraint simplification and goal proving (Sections 3.1-3.2).

This module bridges the constraint *language* (quantified implications
over boolean index terms) and the decision *backends* (conjunctions of
linear atoms):

1. :func:`extract_goals` flattens a constraint tree into a list of
   :class:`Goal` — each a universally quantified implication
   ``forall vars. hyps ==> concl`` — substituting fresh existential
   variables for ``exists`` binders.
2. :func:`solve_evars` eliminates existential variables by
   scope-checked equational solving, the step Section 3.1 reports as
   "crucial in practice".
3. :func:`prove_goal` negates the conclusion, eliminates ``div``,
   ``mod``, ``min``, ``max``, ``abs`` and ``sgn`` via fresh variables
   with defining constraints, splits disjunctions (and ``<>``) into
   cases, and asks a backend to refute every case.

Everything fails *closed*: any goal that cannot be put in linear form
or whose cases cannot all be refuted is reported unproved, and the
corresponding run-time check is kept.
"""

from __future__ import annotations

import itertools
import time
from dataclasses import dataclass
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.solver.portfolio import SolverCache, SolverTelemetry
    from repro.solver.slice import SliceContext

from repro.indices import terms
from repro.indices.constraints import (
    CAnd,
    CExists,
    CForall,
    CImpl,
    CProp,
    CTrue,
    Constraint,
)
from repro.indices.linear import (
    Atom,
    LinComb,
    NonLinearIndex,
    UnsupportedIndex,
    atoms_of_cmp,
    linearize,
)
from repro.indices.sorts import Sort
from repro.indices.terms import (
    And,
    BConst,
    BinOp,
    Cmp,
    EVar,
    EvarStore,
    IConst,
    IVar,
    IndexTerm,
    Not,
    Or,
    UnOp,
)
from repro.lang.source import DUMMY_SPAN, Span
from repro.solver.backends import Backend, get_backend
from repro.solver.budget import (
    DEFAULT_LIMITS,
    Budget,
    BudgetExhausted,
    SolverLimits,
    current_budget,
    use_budget,
)


@dataclass
class Goal:
    """``forall rigid. hyps ==> concl`` with provenance."""

    rigid: dict[str, Sort]
    hyps: list[IndexTerm]
    concl: IndexTerm
    origin: str = ""
    span: Span = DUMMY_SPAN

    def __str__(self) -> str:
        quant = "".join(
            f"forall {name}:{sort}. " for name, sort in self.rigid.items()
        )
        if self.hyps:
            hyp_text = " /\\ ".join(str(h) for h in self.hyps)
            return f"{quant}({hyp_text}) ==> {self.concl}"
        return f"{quant}{self.concl}"


@dataclass
class GoalResult:
    goal: Goal
    proved: bool
    reason: str = ""
    cases: int = 0
    elapsed: float = 0.0
    #: The goal degraded to 'unknown' because its work budget or
    #: deadline ran out (fail-soft: the run-time check is kept).
    budget_exhausted: bool = False
    #: A backend raised and the crash was contained to this goal.
    crashed: bool = False


@dataclass
class SolveStats:
    """Aggregate statistics for one program (feeds Table 1)."""

    goals: int = 0
    proved: int = 0
    failed: int = 0
    cases: int = 0
    evars_created: int = 0
    evars_solved: int = 0
    solve_seconds: float = 0.0
    #: Goals that degraded to 'unknown' on budget/deadline exhaustion.
    budget_exhausted: int = 0
    #: Goals whose backend crash was contained (reported unproved).
    contained_crashes: int = 0


class UnsupportedGoal(Exception):
    """The goal cannot be reduced to linear integer arithmetic."""


# ---------------------------------------------------------------------------
# Goal extraction
# ---------------------------------------------------------------------------


def extract_goals(constraint: Constraint, store: EvarStore) -> list[Goal]:
    """Flatten a constraint tree into proof goals.

    ``exists`` binders are replaced by fresh evars scoped to the rigid
    variables currently in scope, with the binder sort's membership
    constraint recorded as an extra proof obligation on the witness.
    """
    goals: list[Goal] = []

    def walk(
        node: Constraint,
        rigid: dict[str, Sort],
        hyps: tuple[IndexTerm, ...],
        subst_map: dict[str, IndexTerm],
    ) -> None:
        if isinstance(node, CTrue):
            return
        if isinstance(node, CProp):
            prop = terms.subst(node.prop, subst_map)
            goals.append(
                Goal(dict(rigid), list(hyps), prop, node.origin, node.span)
            )
            return
        if isinstance(node, CAnd):
            walk(node.left, rigid, hyps, subst_map)
            walk(node.right, rigid, hyps, subst_map)
            return
        if isinstance(node, CImpl):
            hyp = terms.subst(node.hyp, subst_map)
            walk(node.body, rigid, hyps + (hyp,), subst_map)
            return
        if isinstance(node, CForall):
            name = node.var
            if name in rigid or name in subst_map:
                # alpha-rename to avoid shadowing.
                fresh = _fresh_name(name, set(rigid) | set(subst_map))
                inner_subst = dict(subst_map)
                inner_subst[name] = IVar(fresh)
                name = fresh
            else:
                inner_subst = dict(subst_map)
            new_rigid = dict(rigid)
            new_rigid[name] = node.sort
            membership = node.sort.constraint_on(IVar(name))
            new_hyps = hyps
            if not (isinstance(membership, BConst) and membership.value):
                new_hyps = hyps + (membership,)
            walk(node.body, new_rigid, new_hyps, inner_subst)
            return
        if isinstance(node, CExists):
            evar = store.fresh(node.var, set(rigid))
            inner_subst = dict(subst_map)
            inner_subst[node.var] = evar
            membership = node.sort.constraint_on(evar)
            if not (isinstance(membership, BConst) and membership.value):
                goals.append(
                    Goal(dict(rigid), list(hyps), membership, "witness sort", DUMMY_SPAN)
                )
            walk(node.body, rigid, hyps, inner_subst)
            return
        raise AssertionError(f"unknown constraint node {node!r}")

    walk(constraint, {}, (), {})
    return goals


def _fresh_name(base: str, taken: set[str]) -> str:
    for i in itertools.count(1):
        candidate = f"{base}'{i}"
        if candidate not in taken:
            return candidate
    raise AssertionError("unreachable")


# ---------------------------------------------------------------------------
# Existential variable elimination (Section 3.1)
# ---------------------------------------------------------------------------


def _equational_solution(
    prop: IndexTerm, store: EvarStore
) -> tuple[EVar, IndexTerm] | None:
    """If ``prop`` is an equality determining an unsolved evar with a
    unit coefficient, return ``(evar, witness)``."""
    if not (isinstance(prop, Cmp) and prop.op == "="):
        return None
    try:
        lhs = linearize(store.resolve(prop.left)) - linearize(
            store.resolve(prop.right)
        )
    except (NonLinearIndex, UnsupportedIndex):
        return None
    for var, coeff in lhs.coeffs:
        if isinstance(var, EVar) and not store.is_solved(var) and abs(coeff) == 1:
            rest = lhs.drop(var).scale(-coeff)
            witness = _lincomb_to_term(rest)
            if var not in terms.free_evars(witness):
                return var, witness
    return None


def _lincomb_to_term(lin: LinComb) -> IndexTerm:
    result: IndexTerm = IConst(lin.const)
    for var, coeff in lin.coeffs:
        base: IndexTerm = IVar(var) if isinstance(var, str) else var
        result = terms.iadd(result, terms.imul(IConst(coeff), base))
    return result


def solve_evars(goals: list[Goal], store: EvarStore) -> int:
    """Repeatedly mine goals for evar-determining equalities.

    Conclusions are preferred over hypotheses (solving a conclusion
    makes the goal trivial; solving from a hypothesis instantiates the
    evar with the only value under which the hypothesis can hold).
    Returns the number of evars solved.
    """
    solved = 0
    progress = True
    while progress:
        progress = False
        for goal in goals:
            candidates = [goal.concl] + goal.hyps
            for prop in candidates:
                resolved = store.resolve(prop)
                if not store.unsolved_in(resolved):
                    continue
                solution = _equational_solution(resolved, store)
                if solution is not None and store.solve(*solution):
                    solved += 1
                    progress = True
    return solved


# ---------------------------------------------------------------------------
# Operator elimination: div / mod / min / max / abs / sgn
# ---------------------------------------------------------------------------


class _Definitions:
    """Fresh-variable definitions introduced while flattening a goal."""

    def __init__(self) -> None:
        self.counter = 0
        self.props: list[IndexTerm] = []
        self.cache: dict[IndexTerm, IVar] = {}

    def fresh(self, hint: str) -> IVar:
        self.counter += 1
        return IVar(f"${hint}{self.counter}")


_ELIM_BINOPS = frozenset({"div", "mod", "min", "max"})
_ELIM_UNOPS = frozenset({"abs", "sgn"})


def _needs_elimination(term: IndexTerm) -> bool:
    """Does any subterm carry an operator :func:`_eliminate_ops` must
    rewrite?  Memoized on the interned node (``_elim`` slot) — goal
    hypotheses repeat across the goals of a declaration and across
    programs sharing the prelude, so the common all-linear case reduces
    to one slot read instead of a full traversal."""
    try:
        return term._elim  # type: ignore[attr-defined]
    except AttributeError:
        pass
    if isinstance(term, BinOp) and term.op in _ELIM_BINOPS:
        result = True
    elif isinstance(term, UnOp) and term.op in _ELIM_UNOPS:
        result = True
    else:
        result = any(_needs_elimination(kid) for kid in terms.children(term))
    object.__setattr__(term, "_elim", result)
    return result


def _eliminate_ops(term: IndexTerm, defs: _Definitions) -> IndexTerm:
    """Rewrite eliminable integer operators to fresh variables, adding
    their defining constraints to ``defs.props``."""
    if not _needs_elimination(term):
        return term

    def rewrite(node: IndexTerm) -> IndexTerm | None:
        if isinstance(node, BinOp) and node.op in {"div", "mod"}:
            return _define_divmod(node, defs)
        if isinstance(node, BinOp) and node.op in {"min", "max"}:
            return _define_minmax(node, defs)
        if isinstance(node, UnOp) and node.op == "abs":
            return _define_abs(node, defs)
        if isinstance(node, UnOp) and node.op == "sgn":
            return _define_sgn(node, defs)
        return None

    return terms.transform(term, rewrite)


def _define_divmod(node: BinOp, defs: _Definitions) -> IndexTerm:
    if node in defs.cache:
        quotient = defs.cache[node]
    else:
        divisor = node.right
        if not isinstance(divisor, IConst) or divisor.value == 0:
            raise UnsupportedGoal(
                f"cannot linearize {node.op} with non-constant divisor: {node}"
            )
        c = divisor.value
        key = BinOp("div", node.left, node.right)
        if key in defs.cache:
            quotient = defs.cache[key]
        else:
            quotient = defs.fresh("q")
            defs.cache[key] = quotient
            numerator = node.left
            if c > 0:
                # c*q <= numerator <= c*q + c - 1  (floor division)
                defs.props.append(terms.cmp("<=", terms.imul(IConst(c), quotient), numerator))
                defs.props.append(
                    terms.cmp(
                        "<=",
                        numerator,
                        terms.iadd(terms.imul(IConst(c), quotient), IConst(c - 1)),
                    )
                )
            else:
                # floor with negative divisor: c*q >= numerator >= c*q + c + 1
                defs.props.append(terms.cmp(">=", terms.imul(IConst(c), quotient), numerator))
                defs.props.append(
                    terms.cmp(
                        ">=",
                        numerator,
                        terms.iadd(terms.imul(IConst(c), quotient), IConst(c + 1)),
                    )
                )
        defs.cache[node] = quotient
    if node.op == "div":
        return quotient
    # mod(i, c) = i - c * div(i, c)
    assert isinstance(node.right, IConst)
    return terms.isub(node.left, terms.imul(node.right, quotient))


def _define_minmax(node: BinOp, defs: _Definitions) -> IndexTerm:
    if node in defs.cache:
        return defs.cache[node]
    var = defs.fresh("m")
    defs.cache[node] = var
    rel = "<=" if node.op == "min" else ">="
    defs.props.append(terms.cmp(rel, var, node.left))
    defs.props.append(terms.cmp(rel, var, node.right))
    defs.props.append(
        terms.bor(
            terms.cmp("=", var, node.left),
            terms.cmp("=", var, node.right),
        )
    )
    return var


def _define_abs(node: UnOp, defs: _Definitions) -> IndexTerm:
    if node in defs.cache:
        return defs.cache[node]
    var = defs.fresh("v")
    defs.cache[node] = var
    defs.props.append(terms.cmp(">=", var, node.arg))
    defs.props.append(terms.cmp(">=", var, terms.ineg(node.arg)))
    defs.props.append(
        terms.bor(
            terms.cmp("=", var, node.arg),
            terms.cmp("=", var, terms.ineg(node.arg)),
        )
    )
    return var


def _define_sgn(node: UnOp, defs: _Definitions) -> IndexTerm:
    if node in defs.cache:
        return defs.cache[node]
    var = defs.fresh("s")
    defs.cache[node] = var
    arg = node.arg
    defs.props.append(
        terms.bor(
            terms.bor(
                terms.band(terms.cmp(">", arg, terms.ZERO), terms.cmp("=", var, terms.ONE)),
                terms.band(terms.cmp("=", arg, terms.ZERO), terms.cmp("=", var, terms.ZERO)),
            ),
            terms.band(terms.cmp("<", arg, terms.ZERO), terms.cmp("=", var, IConst(-1))),
        )
    )
    return var


# ---------------------------------------------------------------------------
# Case splitting and backend dispatch
# ---------------------------------------------------------------------------

#: A literal is a comparison, a (possibly negated) boolean variable, or
#: a boolean constant.
_MAX_CASES = 4096


def _split_cases(formula: IndexTerm) -> tuple[tuple[IndexTerm, ...], ...]:
    """DNF of a boolean index term, as a tuple of literal tuples.

    Memoized on the interned node (``_dnf`` slot) — the same goal
    formula recurs whenever a prelude obligation is re-proved for
    another program, and subformulas recur within one program's case
    splits.  A ``UnsupportedGoal`` (case explosion) is cached and
    re-raised the same way."""
    try:
        cached = formula._dnf  # type: ignore[attr-defined]
    except AttributeError:
        pass
    else:
        if isinstance(cached, Exception):
            raise cached
        return cached
    try:
        result = _split_cases_uncached(formula)
    except UnsupportedGoal as exc:
        object.__setattr__(formula, "_dnf", exc)
        raise
    object.__setattr__(formula, "_dnf", result)
    return result


def _split_cases_uncached(formula: IndexTerm) -> tuple[tuple[IndexTerm, ...], ...]:
    if isinstance(formula, And):
        budget = current_budget()
        result = []
        for left in _split_cases(formula.left):
            for right in _split_cases(formula.right):
                # Each conjunction of sub-cases is a unit of DNF work;
                # exhaustion propagates uncached (a bigger budget may
                # finish this split), unlike the structural case cap.
                if budget is not None:
                    budget.spend()
                result.append(left + right)
                if len(result) > _MAX_CASES:
                    raise UnsupportedGoal("case explosion during DNF split")
        return tuple(result)
    if isinstance(formula, Or):
        return _split_cases(formula.left) + _split_cases(formula.right)
    if isinstance(formula, Not):
        inner = formula.arg
        if isinstance(inner, (IVar, EVar)):
            return ((formula,),)  # negated boolean variable literal
        return _split_cases(_negate(inner))
    return ((formula,),)


def _negate(formula: IndexTerm) -> IndexTerm:
    if isinstance(formula, And):
        return Or(_negate(formula.left), _negate(formula.right))
    if isinstance(formula, Or):
        return And(_negate(formula.left), _negate(formula.right))
    if isinstance(formula, Not):
        return formula.arg
    if isinstance(formula, Cmp):
        return Cmp(terms.CMP_NEGATION[formula.op], formula.left, formula.right)
    if isinstance(formula, BConst):
        return BConst(not formula.value)
    # boolean variable
    return Not(formula)


def _case_to_atom_sets(
    literals: "tuple[IndexTerm, ...] | list[IndexTerm]",
) -> list[list[Atom]] | None:
    """Convert one DNF case into conjunctions of linear atoms.

    Returns ``None`` when the case is propositionally unsatisfiable
    (conflicting boolean literals or a ``false`` constant).  ``<>``
    comparisons fan out into further sub-cases, hence a list of sets.
    """
    tagged = _tagged_case_atom_sets(literals, 0)
    if tagged is None:
        return None
    return [atoms for atoms, _ in tagged]


def _tagged_case_atom_sets(
    literals: "tuple[IndexTerm, ...] | list[IndexTerm]",
    split_index: int,
) -> list[tuple[list[Atom], int]] | None:
    """Like :func:`_case_to_atom_sets`, tagging each atom conjunction
    with how many of its leading atoms came from ``literals`` before
    ``split_index`` (the hypothesis part; the rest is the negated
    conclusion).  Boolean-literal conflict detection spans both parts —
    a hypothesis ``b`` and a conclusion case ``~b`` must still refute
    the case propositionally.
    """
    pos_bools: set[IndexTerm] = set()
    neg_bools: set[IndexTerm] = set()
    atom_choices: list[tuple[bool, list[list[Atom]]]] = []
    for position, literal in enumerate(literals):
        if isinstance(literal, BConst):
            if not literal.value:
                return None
            continue
        if isinstance(literal, (IVar, EVar)):
            if literal in neg_bools:
                return None
            pos_bools.add(literal)
            continue
        if isinstance(literal, Not):
            inner = literal.arg
            if inner in pos_bools:
                return None
            neg_bools.add(inner)
            continue
        if isinstance(literal, Cmp):
            try:
                atom_choices.append(
                    (position < split_index, atoms_of_cmp(literal))
                )
            except NonLinearIndex as exc:
                raise UnsupportedGoal(str(exc)) from exc
            except UnsupportedIndex as exc:  # pragma: no cover - defensive
                raise UnsupportedGoal(str(exc)) from exc
            continue
        raise UnsupportedGoal(f"unsupported literal in goal: {literal}")
    if pos_bools & neg_bools:
        return None

    # Cartesian product over the <> fan-outs.  Hypothesis literals
    # precede conclusion literals, so hypothesis atoms form a prefix of
    # every product element and a single count tags the split.
    budget = current_budget()
    result: list[tuple[list[Atom], int]] = [([], 0)]
    for from_hyp, choices in atom_choices:
        new_result = []
        for base, n_hyp in result:
            for choice in choices:
                if budget is not None:
                    budget.spend()
                new_result.append(
                    (base + choice, n_hyp + (len(choice) if from_hyp else 0))
                )
                if len(new_result) > _MAX_CASES:
                    raise UnsupportedGoal("case explosion from disequalities")
        result = new_result
    return result


def prove_goal(
    goal: Goal,
    store: EvarStore,
    backend: Backend | None = None,
    stats: SolveStats | None = None,
    cache: "SolverCache | None" = None,
    telemetry: "SolverTelemetry | None" = None,
    limits: SolverLimits | None = None,
    slicing: "SliceContext | None" = None,
) -> GoalResult:
    """Attempt to discharge one goal; never raises.

    ``cache``/``telemetry`` (see :mod:`repro.solver.portfolio`) wrap
    the backend with memoization on canonical goal keys and query
    accounting.  Callers that already hold an instrumented backend —
    :func:`repro.api.check` builds one per run — pass neither.

    ``slicing`` (see :mod:`repro.solver.slice`) routes every case
    through the verdict-preserving preprocessing layer — relevancy
    slicing, subsumption, shared-prefix Fourier — *above* the backend,
    so the memoization cache sees the sliced (smaller, more shareable)
    canonical keys.  ``None`` is the ``--no-slice`` escape hatch.

    ``limits`` is the goal's resource envelope (defaults to
    :data:`~repro.solver.budget.DEFAULT_LIMITS`): a fresh
    :class:`~repro.solver.budget.Budget` is installed as the ambient
    budget for every backend call this goal triggers.  Exhaustion
    degrades to an unproved goal with a recorded reason (check kept),
    and any backend exception — including ``RecursionError`` — is
    contained to this goal.  The one exception that always propagates
    is :class:`~repro.solver.portfolio.BackendDisagreement`: a
    soundness violation is a bug, never a degradation.
    """
    backend = backend or get_backend()
    if cache is not None or telemetry is not None:
        from repro.solver.portfolio import instrument

        backend = instrument(backend, telemetry, cache)
    budget = Budget.start(limits if limits is not None else DEFAULT_LIMITS)
    started = time.perf_counter()

    def finish(
        proved: bool,
        reason: str = "",
        cases: int = 0,
        *,
        budget_exhausted: bool = False,
        crashed: bool = False,
    ) -> GoalResult:
        elapsed = time.perf_counter() - started
        if stats is not None:
            stats.goals += 1
            stats.cases += cases
            stats.solve_seconds += elapsed
            if proved:
                stats.proved += 1
            else:
                stats.failed += 1
            if budget_exhausted:
                stats.budget_exhausted += 1
            if crashed:
                stats.contained_crashes += 1
        return GoalResult(
            goal, proved, reason, cases, elapsed,
            budget_exhausted=budget_exhausted, crashed=crashed,
        )

    concl = store.resolve(goal.concl)
    hyps = [store.resolve(h) for h in goal.hyps]
    # Sort memberships of the rigid variables are hypotheses too; the
    # extraction pass includes them in goal.hyps already, but adding
    # them here (duplicates are harmless) makes hand-built goals
    # self-contained.
    for name, sort in goal.rigid.items():
        membership = sort.constraint_on(terms.IVar(name))
        if not (isinstance(membership, BConst) and membership.value):
            hyps.append(membership)

    leftover = store.unsolved_in(concl)
    for hyp in hyps:
        leftover |= store.unsolved_in(hyp)
    if leftover:
        names = ", ".join(sorted(str(e) for e in leftover))
        return finish(False, f"unresolved existential variable(s): {names}")

    if isinstance(concl, BConst) and concl.value:
        return finish(True, "trivial", 0)

    total_atom_sets = 0
    try:
        with use_budget(budget):
            if slicing is not None:
                cases = goal_cases(hyps, concl)
            else:
                cases = ((atoms, 0) for atoms in goal_atom_sets(hyps, concl))
            for atoms, n_hyp in cases:
                total_atom_sets += 1
                if slicing is not None:
                    verdict = slicing.query(backend, atoms, n_hyp)
                else:
                    verdict = backend.unsat(atoms)
                if not verdict:
                    if budget.exhausted:
                        # The backend caught the exhaustion internally
                        # and answered 'unknown'; surface the real
                        # reason instead of "could not refute".
                        return finish(
                            False,
                            f"solver budget exhausted "
                            f"({budget.describe()})",
                            total_atom_sets,
                            budget_exhausted=True,
                        )
                    return finish(
                        False,
                        f"backend {backend.name} could not refute a case",
                        total_atom_sets,
                    )
                budget.checkpoint()  # poll the deadline between cases
        return finish(True, "", total_atom_sets)
    except UnsupportedGoal as exc:
        return finish(False, str(exc), total_atom_sets)
    except BudgetExhausted:
        return finish(
            False,
            f"solver budget exhausted ({budget.describe()})",
            total_atom_sets,
            budget_exhausted=True,
        )
    except Exception as exc:
        from repro.solver.portfolio import BackendDisagreement

        if isinstance(exc, BackendDisagreement):
            raise  # a soundness violation must never be swallowed
        return finish(
            False,
            f"solver crashed; check kept "
            f"({type(exc).__name__}: {exc})",
            total_atom_sets,
            crashed=True,
        )


def goal_atom_sets(hyps: list[IndexTerm], concl: IndexTerm):
    """Yield the atom conjunctions whose joint refutation proves
    ``hyps ==> concl`` — i.e. the DNF cases of ``hyps /\\ ~concl``
    after div/mod/min/max/abs/sgn elimination.

    Raises :class:`UnsupportedGoal` on nonlinearity or inexpressible
    operators.  Shared by :func:`prove_goal` (``--no-slice`` path) and
    the counterexample search in :mod:`repro.solver.diagnose`.
    """
    defs = _Definitions()
    flat_hyps = [_eliminate_ops(h, defs) for h in hyps]
    flat_concl = _eliminate_ops(concl, defs)
    formula = terms.conj(flat_hyps + defs.props + [_negate(flat_concl)])
    for literals in _split_cases(formula):
        atom_sets = _case_to_atom_sets(literals)
        if atom_sets is None:
            continue  # propositionally refuted
        yield from atom_sets


def goal_cases(hyps: list[IndexTerm], concl: IndexTerm):
    """Yield ``(atoms, n_hyp)`` pairs for the goal's DNF cases, where
    ``atoms[:n_hyp]`` originate from the hypotheses (and operator
    definitions they introduced) and the rest from the negated
    conclusion — the split the slicing layer needs.

    The flattened atom conjunctions coincide with
    :func:`goal_atom_sets`: ``conj`` is a left fold, so splitting the
    hypothesis and conclusion conjunctions separately and taking the
    product yields the same cases in the same lexicographic
    (hypothesis, conclusion) order, and the hypothesis subformula's DNF
    memo is shared with the unsliced path.
    """
    defs = _Definitions()
    flat_hyps = [_eliminate_ops(h, defs) for h in hyps]
    hyp_props = list(defs.props)
    flat_concl = _eliminate_ops(concl, defs)
    concl_props = defs.props[len(hyp_props):]
    hyp_formula = terms.conj(flat_hyps + hyp_props)
    concl_formula = terms.conj(concl_props + [_negate(flat_concl)])
    budget = current_budget()
    hyp_cases = _split_cases(hyp_formula)
    concl_cases = _split_cases(concl_formula)
    # The unsliced path caps the materialized DNF of the full formula;
    # case counts only grow along the conj fold, so it raises exactly
    # when the final product exceeds the cap — reproduce that here even
    # though the product is streamed, to keep failure modes identical.
    if len(hyp_cases) * len(concl_cases) > _MAX_CASES:
        raise UnsupportedGoal("case explosion during DNF split")
    for hyp_literals in hyp_cases:
        for concl_literals in concl_cases:
            if budget is not None:
                budget.spend()
            tagged = _tagged_case_atom_sets(
                tuple(hyp_literals) + tuple(concl_literals),
                len(hyp_literals),
            )
            if tagged is None:
                continue  # propositionally refuted
            yield from tagged


def prove_all(
    constraint: Constraint,
    store: EvarStore,
    backend: Backend | None = None,
    stats: SolveStats | None = None,
    cache: "SolverCache | None" = None,
    telemetry: "SolverTelemetry | None" = None,
    limits: SolverLimits | None = None,
    slicing: "SliceContext | None" = None,
) -> list[GoalResult]:
    """The full Section 3 pipeline for one constraint tree.

    ``slicing`` is shared across all goals, so refuted cores and
    presolved hypothesis prefixes from one goal accelerate the next.
    """
    if cache is not None or telemetry is not None:
        from repro.solver.portfolio import instrument

        backend = instrument(backend or get_backend(), telemetry, cache)
    goals = extract_goals(constraint, store)
    solved = solve_evars(goals, store)
    if stats is not None:
        stats.evars_solved += solved
    return [
        prove_goal(goal, store, backend, stats, limits=limits, slicing=slicing)
        for goal in goals
    ]
