"""Bounded exhaustive search over integer assignments.

Not part of the paper's system — this is the *testing oracle* the
property-based tests use to validate the real solvers: a model found in
a small box refutes any backend that claimed unsatisfiability, and
box-exhaustive unsatisfiability of bounded systems must agree with the
Omega test.
"""

from __future__ import annotations

from itertools import product
from typing import Iterator, Sequence

from repro.indices.linear import Atom, LinVar
from repro.solver.budget import Budget, resolve_budget


def models_in_box(
    atoms: Sequence[Atom], bound: int, budget: Budget | None = None
) -> Iterator[dict[LinVar, int]]:
    """Yield every assignment in ``[-bound, bound]^n`` satisfying all
    atoms, in lexicographic variable order.

    Each candidate assignment spends one budget step; exhaustion raises
    :class:`~repro.solver.budget.BudgetExhausted` to the caller (an
    aborted enumeration must never read as "box exhausted, no model").
    """
    budget = resolve_budget(budget)
    variables = sorted({v for atom in atoms for v in atom.variables()}, key=repr)
    values = range(-bound, bound + 1)
    for combo in product(values, repeat=len(variables)):
        if budget is not None:
            budget.spend()
        env = dict(zip(variables, combo))
        if all(atom.holds(env) for atom in atoms):
            yield env


def find_model(
    atoms: Sequence[Atom], bound: int, budget: Budget | None = None
) -> dict[LinVar, int] | None:
    """First satisfying assignment inside the box, or ``None``."""
    return next(iter(models_in_box(atoms, bound, budget)), None)


def box_bound_sufficient(atoms: Sequence[Atom], bound: int) -> bool:
    """Heuristic: is the box big enough that emptiness of the box
    likely implies global emptiness?  True when every variable is
    two-sided bounded by unit-coefficient constant constraints within
    the box.  Used by tests to pick trustworthy oracle instances."""
    variables = {v for atom in atoms for v in atom.variables()}
    for var in variables:
        has_lower = has_upper = False
        for atom in atoms:
            coeffs = atom.lhs.as_dict()
            if set(coeffs) != {var} or abs(coeffs[var]) != 1:
                continue
            c = atom.lhs.const
            if atom.rel == "=":
                has_lower = has_upper = abs(c) <= bound
                continue
            if coeffs[var] == 1 and -c >= -bound:  # var >= -c
                has_lower = True
            if coeffs[var] == -1 and c <= bound:  # var <= c
                has_upper = True
        if not (has_lower and has_upper):
            return False
    return True
