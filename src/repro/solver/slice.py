"""Goal preprocessing: relevancy slicing, subsumption, prefix reuse.

:func:`repro.solver.simplify.prove_goal` historically shipped every
goal case to the backend as one monolithic conjunction — the full
hypothesis context plus the negated conclusion — even though most
hypotheses constrain variables the conclusion never mentions.  This
module sits between the case splitter and the (instrumented) backend
and applies three verdict-preserving transformations:

1. **Relevancy slicing** (:func:`split_components`): the atoms of a
   case are partitioned into connected components of the variable
   dependency graph (union-find over each atom's variable set).  A
   conjunction over disjoint variable sets is unsatisfiable iff *some*
   component is — integer variable domains are non-empty, so a
   satisfying assignment for each component extends to the whole
   system — which makes querying the backend per component exact, not
   heuristic.  Components connected to the conclusion are queried
   first: they are the ones the negated conclusion can contradict, so
   the common case short-circuits after one small query.  Smaller atom
   sets also mean smaller canonical keys, so structurally identical
   sliced goals from different declarations collapse to one entry in
   the LRU *and* the driver's persistent cache.

2. **Subsumption** (:class:`SliceContext`): every refuted component is
   remembered as a *core* (a set of atoms shown jointly
   unsatisfiable).  Any later component whose atom set is a syntactic
   superset of a recorded core is unsatisfiable by monotonicity of
   conjunction — no backend call needed.  The check is purely
   syntactic on atoms, so it is sound across goals and declarations
   even though ``$``-prefixed definition variables are scoped per
   goal: an unsatisfiable atom set stays unsatisfiable under any
   reading of its free variables.

3. **Shared-prefix incremental Fourier**: components of goals from the
   same declaration overwhelmingly share their hypothesis atoms and
   differ only in the negated conclusion.  For Fourier-routed backends
   the shared hypothesis part is presolved once
   (:func:`repro.solver.fourier.presolve_prefix`) and installed as the
   ambient prefix around the backend call, so per-goal elimination
   resumes from the residual system instead of restarting from
   scratch.

Invariant (enforced by ``tests/solver/test_slice.py`` and the CI
``slice-parity`` job): the layer never changes a verdict.  Slicing is
exact by the component argument above; subsumption only converts
would-be refutations the backend *could* re-derive into cache hits on
the corpus (where every goal is proved); prefix resume computes the
same Fourier fixpoint through a different elimination order and bails
out to the from-scratch path whenever the residual mentions an
eliminated variable.  Corpus verdicts are byte-identical with the
layer on and off (``--no-slice``).

Budget accounting stays honest: the subsumption probe for each
component charges one ambient :class:`~repro.solver.budget.Budget`
step, and a prefix presolve spends from the budget of the goal that
triggers it.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import TYPE_CHECKING, Sequence

from repro.indices.linear import Atom, LinVar
from repro.solver import fourier
from repro.solver.backends import Backend
from repro.solver.budget import current_budget

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.solver.portfolio import SolverTelemetry


#: Backends whose refutations route through Fourier elimination and so
#: can resume from a presolved hypothesis prefix.  Others (interval,
#: omega, simplex, bruteforce, fourier-rational with its distinct
#: config) ignore the ambient prefix entirely.
_PREFIX_BACKENDS = frozenset({"fourier", "portfolio", "differential"})


@dataclass
class SlicedSystem:
    """The component decomposition of one goal case.

    ``refuted`` — a ground atom was trivially false (the whole case is
    unsatisfiable without consulting any backend).  ``components`` are
    the variable-connected atom groups, conclusion-connected groups
    first (each group in input atom order).  ``relevant_atoms`` is the
    size of the conclusion-connected slice — what classic relevancy
    slicing would keep — and feeds the atoms-after-slice telemetry.
    """

    refuted: bool
    components: list[list[Atom]]
    relevant_atoms: int


def split_components(
    atoms: Sequence[Atom], seed_vars: set[LinVar]
) -> SlicedSystem:
    """Partition ``atoms`` into variable-connected components.

    Ground atoms participate in no component: a trivially false one
    refutes the whole system (``refuted=True``), a trivially true one
    is dropped.  Components containing any of ``seed_vars`` (the
    conclusion's variables) are ordered first; within that split,
    components appear in order of their first atom and keep their
    atoms in input order, so the decomposition is deterministic.
    """
    parent: dict[LinVar, LinVar] = {}

    def find(var: LinVar) -> LinVar:
        root = var
        while parent[root] != root:
            root = parent[root]
        while parent[var] != root:
            parent[var], var = root, parent[var]
        return root

    var_atoms: list[tuple[Atom, LinVar]] = []
    for atom in atoms:
        avars = atom.lhs.variables()
        if not avars:
            if atom.is_trivially_false():
                return SlicedSystem(True, [], 0)
            continue  # trivially true ground atom
        first: LinVar | None = None
        for var in avars:
            if var not in parent:
                parent[var] = var
            if first is None:
                first = var
            else:
                root_a, root_b = find(first), find(var)
                if root_a != root_b:
                    parent[root_a] = root_b
        assert first is not None
        var_atoms.append((atom, first))

    groups: dict[LinVar, list[Atom]] = {}
    order: list[LinVar] = []
    for atom, var in var_atoms:
        root = find(var)
        if root not in groups:
            groups[root] = []
            order.append(root)
        groups[root].append(atom)

    seed_roots = {find(var) for var in seed_vars if var in parent}
    components = [groups[root] for root in order if root in seed_roots]
    relevant = sum(len(component) for component in components)
    components += [groups[root] for root in order if root not in seed_roots]
    return SlicedSystem(False, components, relevant)


class SliceContext:
    """Per-run shared state for the goal-preprocessing layer.

    One instance is shared by every goal of a check (and by every
    worker thread of the parallel driver — all mutation happens under
    one lock, and the state is only ever *extended*, so concurrent
    readers can at worst miss a subsumption or presolve another prefix,
    never change a verdict).  Process workers build their own instance.
    """

    #: Caps keep the shared dictionaries O(run size): recording stops
    #: silently once reached — only an optimization is lost.
    MAX_CORES = 1024
    MAX_CORE_ATOMS = 16
    MAX_PREFIXES = 1024

    def __init__(self, telemetry: "SolverTelemetry | None" = None) -> None:
        self.telemetry = telemetry
        self._lock = threading.Lock()
        #: Refuted cores anchored at their first atom: a candidate
        #: superset must contain every core atom, in particular the
        #: anchor, so lookup only scans cores anchored at the
        #: candidate's own atoms.
        self._cores: dict[Atom, list[frozenset[Atom]]] = {}
        self._core_count = 0
        #: Presolved Fourier state per distinct hypothesis atom set.
        self._prefixes: dict[frozenset[Atom], fourier.PrefixState] = {}

    # -- the main entry point -----------------------------------------

    def query(
        self, backend: Backend, atoms: Sequence[Atom], n_hyp: int
    ) -> bool:
        """Refute one goal case (``True`` iff unsatisfiable).

        ``atoms[:n_hyp]`` originate from the hypotheses, the rest from
        the negated conclusion — the split drives both the relevancy
        seed and the shared-prefix selection.
        """
        seed_vars: set[LinVar] = set()
        for atom in atoms[n_hyp:]:
            seed_vars |= atom.lhs.variables()
        sliced = split_components(atoms, seed_vars)
        if self.telemetry is not None:
            with self._lock:
                self.telemetry.sliced_queries += 1
                self.telemetry.atoms_before += len(atoms)
                self.telemetry.atoms_after += sliced.relevant_atoms
        if sliced.refuted:
            return True

        budget = current_budget()
        hyp_set = set(atoms[:n_hyp])
        for component in sliced.components:
            if budget is not None:
                budget.spend()  # the subsumption probe is real work
            component_set = frozenset(component)
            if self._subsumed(component, component_set):
                if self.telemetry is not None:
                    with self._lock:
                        self.telemetry.subsumption_hits += 1
                return True
            if self._refute_component(backend, component, component_set, hyp_set):
                self._record_core(component, component_set)
                return True
        return False

    # -- subsumption ---------------------------------------------------

    def _subsumed(
        self, component: list[Atom], component_set: frozenset[Atom]
    ) -> bool:
        with self._lock:
            for atom in component:
                for core in self._cores.get(atom, ()):
                    if core <= component_set:
                        return True
        return False

    def _record_core(
        self, component: list[Atom], component_set: frozenset[Atom]
    ) -> None:
        if len(component_set) > self.MAX_CORE_ATOMS:
            return
        with self._lock:
            if self._core_count >= self.MAX_CORES:
                return
            anchored = self._cores.setdefault(component[0], [])
            if component_set not in anchored:
                anchored.append(component_set)
                self._core_count += 1

    # -- shared-prefix Fourier ----------------------------------------

    def _refute_component(
        self,
        backend: Backend,
        component: list[Atom],
        component_set: frozenset[Atom],
        hyp_set: set[Atom],
    ) -> bool:
        state = None
        if backend.name in _PREFIX_BACKENDS:
            prefix_atoms = tuple(a for a in component if a in hyp_set)
            # A one-atom prefix saves nothing; a full-component prefix
            # would presolve the conclusion into the shared state.
            if 2 <= len(prefix_atoms) < len(component):
                state = self._prefix_state(prefix_atoms, component)
        if state is None:
            return backend.unsat(component)
        with fourier.use_prefix(state) as slot:
            verdict = backend.unsat(component)
        if slot.uses and self.telemetry is not None:
            with self._lock:
                self.telemetry.prefix_reuses += slot.uses
        return verdict

    def _prefix_state(
        self, prefix_atoms: tuple[Atom, ...], component: list[Atom]
    ) -> fourier.PrefixState:
        key = frozenset(prefix_atoms)
        with self._lock:
            cached = self._prefixes.get(key)
        if cached is not None:
            return cached
        protected: set[LinVar] = set()
        for atom in component:
            if atom not in key:
                protected |= atom.lhs.variables()
        # Spends this goal's ambient budget; BudgetExhausted propagates
        # (prove_goal degrades the goal) without caching a partial state.
        state = fourier.presolve_prefix(prefix_atoms, protected)
        with self._lock:
            if len(self._prefixes) < self.MAX_PREFIXES:
                state = self._prefixes.setdefault(key, state)
        return state
