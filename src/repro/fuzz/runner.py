"""The ``repro fuzz`` loop and the ``--corpus-scale`` emitter.

:func:`fuzz` drives seed → generate → differentially execute →
(on mismatch) shrink → write repro, sharing one solver cache across
all iterations so a 500-program run stays fast.  Iteration ``i`` of
seed ``s`` derives its own :class:`random.Random` from the string
``"{s}:{i}"`` (string seeding is stable across processes and Python
versions), so any finding is reproducible from ``(seed, iteration)``
alone and iterations are independent of each other.

:func:`emit_corpus` renders generated programs to ``*.dml`` files
without running the oracle — the ``--corpus-scale`` mode that blows
the 16-program bundled corpus up by 100–1000× to stress the driver,
verdict store, slicing, and caches (``repro check-corpus --dir``
consumes the result; CI checks jobs=1 vs jobs=4 verdict byte-parity
on it).
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Sequence

from repro.compile.dialects.base import Dialect
from repro.fuzz import shrink as shrink_mod
from repro.fuzz.gen import GenConfig, ProgramSpec, generate, render
from repro.fuzz.oracle import (
    KINDS,
    DiffResult,
    resolve_dialects,
    run_differential,
)
from repro.solver.portfolio import SolverCache


@dataclass
class Finding:
    """One mismatching program, before and after shrinking."""

    iteration: int
    seed: int
    kind: str  # worst mismatch kind
    source: str
    result: DiffResult
    shrunk_source: str | None = None
    shrunk_result: DiffResult | None = None
    shrink_attempts: int = 0

    @property
    def final_source(self) -> str:
        return self.shrunk_source or self.source

    @property
    def final_lines(self) -> int:
        return len(self.final_source.rstrip("\n").split("\n"))

    def render(self) -> str:
        result = self.shrunk_result or self.result
        header = (
            f"finding: {self.kind} (seed {self.seed}, iteration "
            f"{self.iteration}, {self.final_lines} line(s)"
            + (f", shrunk in {self.shrink_attempts} attempt(s))"
               if self.shrunk_source else ", unshrunk)")
        )
        return "\n".join([
            header,
            "-" * 64,
            self.final_source.rstrip("\n"),
            "-" * 64,
            result.render(),
        ])


@dataclass
class FuzzReport:
    """Aggregate outcome of one fuzzing run."""

    seed: int
    iterations: int
    dialects: list[str]
    findings: list[Finding] = field(default_factory=list)
    programs: int = 0
    sites: int = 0
    eliminable: int = 0
    elapsed: float = 0.0

    @property
    def ok(self) -> bool:
        return not self.findings

    def render(self) -> str:
        by_kind = {k: sum(1 for f in self.findings if f.kind == k)
                   for k in KINDS}
        counts = ", ".join(f"{n} {k}" for k, n in by_kind.items() if n)
        lines = [
            f"fuzz: seed {self.seed}, {self.programs} program(s), "
            f"dialects {', '.join(self.dialects)}",
            f"sites: {self.sites} total, {self.eliminable} eliminable "
            f"({self.eliminable / self.sites:.0%})" if self.sites
            else "sites: none",
            f"findings: {len(self.findings)}"
            + (f" ({counts})" if counts else " (clean)"),
            f"elapsed: {self.elapsed:.1f} s",
        ]
        for finding in self.findings:
            lines.append("")
            lines.append(finding.render())
        return "\n".join(lines)


def iteration_rng(seed: int, iteration: int) -> random.Random:
    """The deterministic per-iteration generator stream."""
    return random.Random(f"{seed}:{iteration}")


def fuzz(
    seed: int = 0,
    iterations: int = 200,
    *,
    dialects: Sequence[str | Dialect] | None = None,
    config: GenConfig = GenConfig(),
    shrink: bool = True,
    max_shrink_attempts: int = 250,
    backend: str = "fourier",
    out: str | Path | None = None,
    progress: Callable[[int, DiffResult], None] | None = None,
) -> FuzzReport:
    """Run the differential fuzzing loop.

    On a mismatch, the shrinker minimizes the spec while the *worst*
    mismatch kind reproduces, and — when ``out`` is given — the
    minimized program and its oracle report land in ``out/`` as
    ``finding_NNNN.dml`` / ``finding_NNNN.txt``.
    """
    resolved = resolve_dialects(dialects)
    labels = [label for label, _ in resolved]
    cache = SolverCache(maxsize=1 << 16)
    report = FuzzReport(seed=seed, iterations=iterations, dialects=labels)
    out_dir = Path(out) if out is not None else None
    if out_dir is not None:
        out_dir.mkdir(parents=True, exist_ok=True)
    started = time.perf_counter()

    def oracle(spec: ProgramSpec, name: str) -> tuple[DiffResult, str]:
        rendered = render(spec)
        result = run_differential(
            rendered.source, rendered.truths, name=name,
            dialects=resolved, backend=backend, cache=cache,
        )
        return result, rendered.source

    for i in range(iterations):
        spec = generate(iteration_rng(seed, i), config)
        result, source = oracle(spec, f"fuzz-{seed}-{i}")
        report.programs += 1
        if result.report is not None:
            report.sites += len(result.report.sites)
            report.eliminable += len(result.report.eliminable_sites())
        if progress is not None:
            progress(i, result)
        if result.ok:
            continue

        finding = Finding(
            iteration=i, seed=seed, kind=result.worst or "behaviour",
            source=source, result=result,
        )
        if shrink:
            target = finding.kind

            def still_failing(candidate: ProgramSpec) -> bool:
                outcome, _ = oracle(candidate, f"shrink-{seed}-{i}")
                return target in outcome.kinds

            shrunk, attempts = shrink_mod.shrink(
                spec, still_failing, max_attempts=max_shrink_attempts
            )
            finding.shrink_attempts = attempts
            if shrunk != spec:
                shrunk_result, shrunk_source = oracle(
                    shrunk, f"shrunk-{seed}-{i}"
                )
                finding.shrunk_source = shrunk_source
                finding.shrunk_result = shrunk_result
        report.findings.append(finding)

        if out_dir is not None:
            stem = f"finding_{i:04d}"
            (out_dir / f"{stem}.dml").write_text(finding.final_source)
            (out_dir / f"{stem}.txt").write_text(finding.render() + "\n")

    report.elapsed = time.perf_counter() - started
    return report


def emit_corpus(
    out: str | Path,
    count: int,
    *,
    seed: int = 0,
    config: GenConfig = GenConfig(),
) -> list[Path]:
    """Write ``count`` generated programs to ``out`` (no oracle runs).

    File names carry the seed and index (``fuzz_{seed}_{i:05d}.dml``),
    so a corpus is reproducible and mergeable with others generated
    from different seeds.
    """
    out_dir = Path(out)
    out_dir.mkdir(parents=True, exist_ok=True)
    paths: list[Path] = []
    for i in range(count):
        rendered = render(generate(iteration_rng(seed, i), config))
        path = out_dir / f"fuzz_{seed}_{i:05d}.dml"
        path.write_text(rendered.source)
        paths.append(path)
    return paths
