"""The differential oracle: one program, every engine, one verdict.

An *engine* is one way to execute a DML program end to end:

* ``interp-checked`` — the interpreter with every run-time check kept
  (the reference semantics; everything else is compared against it);
* ``interp`` — the interpreter with the solver-certified sites
  eliminated;
* ``<dialect>-checked`` — the compiled build with every check kept;
* ``<dialect>-unchecked`` — the compiled build with the
  certificate-gated elimination plan applied,

for every requested dialect (default: every *available* dialect).  An
engine's :class:`Outcome` is either the extracted native value
(``Dialect.extract_value`` / cons-chain flattening for the
interpreter, so representation differences can never masquerade as
behaviour) or the raised exception's class name —
``BoundsError``/``TagError``/``OverflowError`` are part of compared
behaviour, exactly as the issue demands.

Mismatch kinds, most severe first:

* ``pipeline-error`` — the static pipeline raised on a generated
  program (generator or frontend bug);
* ``soundness`` — the solver proved a site that is non-eliminable *by
  construction* (the paper's central claim would be violated);
* ``behaviour`` — an engine's outcome differs from the reference;
* ``structural`` — a generated program failed a structural goal
  (generator invariant broken: every generated call satisfies its
  callee's guard with literals);
* ``incompleteness`` — a by-construction-eliminable site stayed
  unproved (solver regression; checks stay sound but the paper's
  elimination rate silently degrades).

When any mismatch is found and goals failed, the report carries the
concrete counterexample valuations from
:func:`repro.solver.diagnose.explain_failures` — "fails when i = 3,
n = 2" is the difference between a repro and a riddle.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterable, Sequence

from repro import api
from repro.compile.dialects import available_dialects, get_dialect
from repro.compile.dialects.base import Dialect
from repro.eval.interp import Interpreter
from repro.eval.values import ConV, to_pylist
from repro.fuzz.gen import SiteTruth
from repro.lang.errors import DMLError

#: Mismatch kinds in decreasing severity.
KINDS = ("pipeline-error", "soundness", "behaviour", "structural",
         "incompleteness")


@dataclass(frozen=True)
class Outcome:
    """What one engine produced: a native value or an exception class."""

    kind: str  # "value" | "error"
    value: Any = None
    error: str = ""

    def render(self) -> str:
        if self.kind == "error":
            return f"raises {self.error}"
        text = repr(self.value)
        return text if len(text) <= 60 else text[:57] + "..."


@dataclass(frozen=True)
class Mismatch:
    kind: str
    detail: str
    engine: str | None = None
    site: str | None = None


@dataclass
class DiffResult:
    """Everything one differential run produced."""

    outcomes: dict[str, Outcome] = field(default_factory=dict)
    mismatches: list[Mismatch] = field(default_factory=list)
    report: api.CheckReport | None = None
    #: Counterexample valuations for failed goals (diagnose wiring).
    diagnostics: list[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.mismatches

    @property
    def kinds(self) -> set[str]:
        return {m.kind for m in self.mismatches}

    @property
    def worst(self) -> str | None:
        for kind in KINDS:
            if kind in self.kinds:
                return kind
        return None

    def render(self) -> str:
        lines = []
        for m in sorted(self.mismatches, key=lambda m: KINDS.index(m.kind)):
            where = f" [{m.engine or m.site}]" if (m.engine or m.site) else ""
            lines.append(f"{m.kind}{where}: {m.detail}")
        if self.outcomes:
            lines.append("engine outcomes:")
            for name, outcome in self.outcomes.items():
                lines.append(f"  {name:<20} {outcome.render()}")
        if self.diagnostics:
            lines.append("diagnostics:")
            lines.extend(f"  {d}" for d in self.diagnostics)
        return "\n".join(lines)


def _interp_native(value: Any) -> Any:
    """Flatten interpreter values to plain Python (lists stay lists)."""
    if isinstance(value, ConV):
        return [_interp_native(x) for x in to_pylist(value)]
    if isinstance(value, list):
        return [_interp_native(x) for x in value]
    if isinstance(value, tuple):
        return tuple(_interp_native(x) for x in value)
    return value


def _capture(thunk) -> Outcome:
    try:
        return Outcome("value", value=thunk())
    except DMLError as exc:
        return Outcome("error", error=type(exc).__name__)
    except Exception as exc:  # noqa: BLE001 - engine divergence IS the signal
        return Outcome("error", error=type(exc).__name__)


def resolve_dialects(
    dialects: Sequence[str | Dialect] | None,
) -> list[tuple[str, Dialect]]:
    """Normalize a dialect request to ``(label, instance)`` pairs.

    ``None`` selects every available registered dialect.  Instances
    pass through unchanged (that is how :mod:`repro.fuzz.faults`
    injects broken variants under their own labels).
    """
    if dialects is None:
        return [(name, get_dialect(name)) for name in available_dialects()]
    resolved: list[tuple[str, Dialect]] = []
    for d in dialects:
        if isinstance(d, tuple):  # already-resolved (label, instance)
            resolved.append(d)
        elif isinstance(d, Dialect):
            resolved.append((d.name, d))
        else:
            resolved.append((d, get_dialect(d)))
    return resolved


def _truth_mismatches(
    report: api.CheckReport, truths: Iterable[SiteTruth]
) -> list[Mismatch]:
    truths = list(truths)
    if not truths:
        return []
    if not report.structural_ok:
        failed = [r for r in report.failed_goals if not r.goal.origin]
        where = report.source.describe(failed[0].goal.span) if failed else "?"
        return [Mismatch(
            "structural",
            f"{len(failed)} structural goal(s) failed (first at {where}); "
            "generated calls satisfy their guards by construction, so "
            "this is a generator or elaborator bug",
        )]
    mismatches: list[Mismatch] = []
    elim = report.eliminable_sites()
    by_line = {t.line: t for t in truths}
    for sid, info in report.sites.items():
        line, _ = report.source.line_col(info.span.start)
        truth = by_line.get(line)
        if truth is None:
            mismatches.append(Mismatch(
                "structural",
                f"site {sid} on line {line} has no ground truth "
                "(renderer invariant: one tracked site per line)",
                site=sid,
            ))
            continue
        proved = sid in elim
        if proved and not truth.eliminable:
            mismatches.append(Mismatch(
                "soundness",
                f"solver proved site {sid} (line {line}, {truth.note}) "
                "which is non-eliminable by construction",
                site=sid,
            ))
        elif truth.eliminable and not proved:
            mismatches.append(Mismatch(
                "incompleteness",
                f"site {sid} (line {line}, {truth.note}) is eliminable "
                "by construction but stayed unproved",
                site=sid,
            ))
    return mismatches


def run_differential(
    source: str,
    truths: Sequence[SiteTruth] = (),
    *,
    name: str = "<fuzz>",
    dialects: Sequence[str | Dialect] | None = None,
    backend: str = "fourier",
    cache=None,
    entry: str = "main",
    args: tuple = (0,),
) -> DiffResult:
    """Run one program through every engine and compare outcomes."""
    from repro.compile.elim import plan_elimination
    from repro.compile.pycodegen import compile_program

    try:
        report = api.check(source, name, backend=backend, cache=cache)
    except DMLError as exc:
        return DiffResult(mismatches=[Mismatch(
            "pipeline-error",
            f"static pipeline raised {type(exc).__name__}: {exc}",
        )])

    result = DiffResult(report=report)
    result.mismatches.extend(_truth_mismatches(report, truths))

    elim = report.eliminable_sites()
    result.outcomes["interp-checked"] = _capture(
        lambda: _interp_native(
            Interpreter(report.program, set(), env=report.env)
            .call(entry, *args)
        )
    )
    result.outcomes["interp"] = _capture(
        lambda: _interp_native(
            Interpreter(report.program, elim, env=report.env)
            .call(entry, *args)
        )
    )

    for label, dialect in resolve_dialects(dialects):
        plan = plan_elimination(report, dialect)
        for mode, unchecked in (("checked", set()),
                                ("unchecked", plan.unchecked)):
            def compiled(unchecked=unchecked, dialect=dialect):
                module = compile_program(
                    report.program, report.env, unchecked,
                    name="fuzzmod", dialect=dialect,
                )
                module.load()
                adapted = dialect.adapt_args(tuple(args))
                return dialect.extract_value(module.call(entry, *adapted))

            result.outcomes[f"{label}-{mode}"] = _capture(compiled)

    reference = result.outcomes["interp-checked"]
    for engine, outcome in result.outcomes.items():
        if outcome != reference:
            result.mismatches.append(Mismatch(
                "behaviour",
                f"{engine} disagrees with interp-checked: "
                f"{outcome.render()} vs {reference.render()}",
                engine=engine,
            ))

    if result.mismatches and report.failed_goals:
        result.diagnostics = report.explain()
    return result
