"""Whole-pipeline differential fuzzing (ROADMAP item 4).

The subpackage splits along the classic fuzzing pipeline:

* :mod:`repro.fuzz.gen` — a seeded, grammar-directed generator of
  well-typed DML programs whose access sites are eliminable or
  non-eliminable *by construction* (the ground truth rides along);
* :mod:`repro.fuzz.oracle` — the differential oracle: one program, every
  engine (interpreter with/without elimination, checked and
  certificate-gated unchecked compiled builds, per dialect), outcomes
  compared as values-or-exception-class via ``extract_value``;
* :mod:`repro.fuzz.shrink` — a greedy delta-debugging shrinker over the
  generator's spec (never over raw text, so every shrink candidate is
  well-typed by construction too);
* :mod:`repro.fuzz.faults` — deliberately broken dialect variants used
  to prove the fuzzer finds (and shrinks) the bugs it was built for;
* :mod:`repro.fuzz.runner` — the ``repro fuzz`` loop and the
  ``--corpus-scale`` emitter for driver/store stress runs.
"""

from repro.fuzz.gen import GenConfig, ProgramSpec, Rendered, generate, render
from repro.fuzz.oracle import DiffResult, Mismatch, Outcome, run_differential
from repro.fuzz.runner import Finding, FuzzReport, emit_corpus, fuzz
from repro.fuzz.shrink import shrink

__all__ = [
    "DiffResult",
    "Finding",
    "FuzzReport",
    "GenConfig",
    "Mismatch",
    "Outcome",
    "ProgramSpec",
    "Rendered",
    "emit_corpus",
    "fuzz",
    "generate",
    "render",
    "run_differential",
    "shrink",
]
