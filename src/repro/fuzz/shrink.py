"""Greedy delta-debugging over program specs.

The shrinker edits the generator's :class:`~repro.fuzz.gen.ProgramSpec`
— never raw source text — so every candidate re-renders to a
well-typed program with freshly recomputed ground truth; a shrink can
change a site's by-construction eliminability (say, an index literal
dropping into bounds) and the truth follows automatically, because
:func:`~repro.fuzz.gen.render` derives it from the same spec fields.

The loop is the classic greedy fixpoint: passes run until none makes
progress or the attempt budget is spent.  A candidate is kept iff the
caller's predicate still holds (the runner's predicate: "the worst
mismatch kind reproduces"), so any transformation is sound — an
overeager shrink that loses the bug is simply rejected.

Passes, cheapest-win first:

1. drop contiguous chunks of ``main``'s ops (halving chunk sizes down
   to single ops — most findings need two or three lines);
2. drop now-unreferenced arrays and lists (indices remapped);
3. simplify literals: indices toward 0, values toward 0/1, array sizes
   toward 1, tabulate builds to plain ``array`` builds, list payloads
   to ``(1,)``.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Callable, Iterator

from repro.fuzz.gen import TEMPLATES, ArrayDecl, Op, ProgramSpec


def _array_refs(spec: ProgramSpec, op: Op) -> int | None:
    """The array index ``op`` references, if any."""
    if op.kind in ("sub", "update", "len"):
        return op.target
    if op.kind == "call":
        t = TEMPLATES[spec.helpers[op.helper].template]
        if t.kind == "array":
            return op.target
    return None


def _list_refs(spec: ProgramSpec, op: Op) -> int | None:
    if op.kind in ("nth", "hd"):
        return op.target
    if op.kind == "call":
        t = TEMPLATES[spec.helpers[op.helper].template]
        if t.kind == "list":
            return op.target
    return None


def _drop_array(spec: ProgramSpec, ai: int) -> ProgramSpec | None:
    if len(spec.arrays) <= 1:
        return None  # the generator invariant keeps one array around
    if any(_array_refs(spec, op) == ai for op in spec.ops):
        return None
    ops = tuple(
        replace(op, target=op.target - 1)
        if (ref := _array_refs(spec, op)) is not None and ref > ai
        else op
        for op in spec.ops
    )
    return replace(spec, arrays=spec.arrays[:ai] + spec.arrays[ai + 1:],
                   ops=ops)


def _drop_list(spec: ProgramSpec, li: int) -> ProgramSpec | None:
    if any(_list_refs(spec, op) == li for op in spec.ops):
        return None
    ops = tuple(
        replace(op, target=op.target - 1)
        if (ref := _list_refs(spec, op)) is not None and ref > li
        else op
        for op in spec.ops
    )
    return replace(spec, lists=spec.lists[:li] + spec.lists[li + 1:],
                   ops=ops)


def _literal_candidates(spec: ProgramSpec) -> Iterator[ProgramSpec]:
    """One-field simplifications, yielded lazily."""
    for i, op in enumerate(spec.ops):
        def with_op(new_op: Op, i=i) -> ProgramSpec:
            return replace(spec, ops=spec.ops[:i] + (new_op,)
                           + spec.ops[i + 1:])

        if op.idx != 0:
            # Even call indices may move: a candidate that breaks the
            # callee's guard renders to a structurally failing program
            # and the predicate rejects it.
            yield with_op(replace(op, idx=0))
        if op.value[0] == "acc":
            yield with_op(replace(op, value=("lit", 1)))
        elif op.kind != "arith" and op.value != ("lit", 0):
            yield with_op(replace(op, value=("lit", 0)))
        elif op.kind == "arith" and op.value[1] not in (1,):
            yield with_op(replace(op, value=(op.value[0], 1)))

    for ai, a in enumerate(spec.arrays):
        def with_array(new_a: ArrayDecl, ai=ai) -> ProgramSpec:
            return replace(spec, arrays=spec.arrays[:ai] + (new_a,)
                           + spec.arrays[ai + 1:])

        if a.tab:
            yield with_array(ArrayDecl(size=a.size, init=a.add))
        if a.size > 1:
            yield with_array(replace(a, size=1))
        if a.init not in (0,) and not a.tab:
            yield with_array(replace(a, init=0))

    for li, l in enumerate(spec.lists):
        if l.items != (1,):
            yield replace(spec, lists=spec.lists[:li]
                          + (replace(l, items=(1,)),) + spec.lists[li + 1:])


def shrink(
    spec: ProgramSpec,
    predicate: Callable[[ProgramSpec], bool],
    *,
    max_attempts: int = 250,
) -> tuple[ProgramSpec, int]:
    """Greedily minimize ``spec`` while ``predicate`` holds.

    Returns the smallest accepted spec and the number of predicate
    evaluations spent.  ``predicate(spec)`` itself is assumed true
    (the caller found the mismatch before asking for a shrink).
    """
    attempts = 0

    def keep(candidate: ProgramSpec) -> bool:
        nonlocal spec, attempts
        if attempts >= max_attempts:
            return False
        attempts += 1
        if predicate(candidate):
            spec = candidate
            return True
        return False

    progress = True
    while progress and attempts < max_attempts:
        progress = False

        # Pass 1: drop op chunks, largest first.
        chunk = max(1, len(spec.ops) // 2)
        while chunk >= 1:
            i = 0
            while i < len(spec.ops):
                candidate = replace(
                    spec, ops=spec.ops[:i] + spec.ops[i + chunk:]
                )
                if len(candidate.ops) < len(spec.ops) and keep(candidate):
                    progress = True  # same i: the next chunk slid in
                else:
                    i += chunk
            chunk //= 2

        # Pass 2: drop unreferenced declarations.
        for ai in reversed(range(len(spec.arrays))):
            candidate = _drop_array(spec, ai)
            if candidate is not None and keep(candidate):
                progress = True
        for li in reversed(range(len(spec.lists))):
            candidate = _drop_list(spec, li)
            if candidate is not None and keep(candidate):
                progress = True

        # Pass 3: simplify literals.
        changed = True
        while changed and attempts < max_attempts:
            changed = False
            for candidate in list(_literal_candidates(spec)):
                if keep(candidate):
                    changed = progress = True
                    break  # spec changed; regenerate candidates

    return spec, attempts
