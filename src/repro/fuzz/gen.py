"""Seeded, grammar-directed generation of well-typed DML programs.

The generator targets exactly the decidable linear-index fragment the
elaborator handles, so every generated program parses, ML-infers, and
dependently elaborates with ``structural_ok`` — by construction, never
by retry.  The trick is to generate a *spec* (plain dataclasses below)
rather than text: helper functions are drawn from a fixed template
library whose annotations are known-provable shapes (the corpus
programs' own loop and access idioms), and every call the spec makes to
a constrained helper is generated to satisfy the helper's guard with
literal arguments the solver can discharge.

Ground truth rides along.  Each rendered access site lands on its own
source line, and :func:`render` emits one :class:`SiteTruth` per site
recording whether that site is eliminable *by construction*:

* helper-body sites are eliminable iff the template's annotation pins
  the index (``get_ok``, ``sum_loop``, ...) and non-eliminable iff the
  index arrives as an unconstrained ``int`` (``get_any``, ...);
* direct sites in ``main`` use literal indices against literal-sized
  arrays/lists, so eliminability is plain arithmetic
  (``0 <= idx < size``).

A solver verdict that *disagrees* with the truth is itself a finding:
proving a non-eliminable-by-construction site is a soundness alarm,
failing an eliminable-by-construction one is an incompleteness
regression (the oracle distinguishes the two).

Out-of-int64-range literals are generated with configurable bias so the
packed/numpy dialects' repack-on-overflow and read-unboxing paths stay
under differential test; division and modulus only ever take nonzero
literal divisors (the interpreter and the compiled build raise
different exception types on division by zero, a deliberate non-goal).

Determinism: the same :class:`random.Random` stream and config produce
the identical spec, and :func:`render` is a pure function of the spec —
``repro fuzz --seed N`` is exactly reproducible.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, replace
from typing import Callable

# ---------------------------------------------------------------------------
# Ground truth
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class SiteTruth:
    """By-construction eliminability of one access site.

    ``line`` is the 1-based source line the site was rendered on; the
    renderer guarantees one access site per line, so the oracle can
    join truths to :class:`~repro.core.elaborate.SiteInfo` spans by
    line number alone.
    """

    line: int
    op: str  # "sub" | "update" | "nth" | "hd"
    eliminable: bool
    note: str  # template key or "direct"


# ---------------------------------------------------------------------------
# Program specs (the shrinker edits these, never raw text)
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class ArrayDecl:
    """``val aK = array(size, init)`` or ``tabulate(size, fn j => ...)``."""

    size: int
    init: int = 0
    tab: bool = False
    mul: int = 1
    add: int = 0


@dataclass(frozen=True)
class ListDecl:
    """``val lK = x0 :: x1 :: ... :: nil`` (always non-empty: an
    unannotated ``nil`` binding would be polymorphic)."""

    items: tuple[int, ...] = (1,)


@dataclass(frozen=True)
class HelperDecl:
    """One instance of a template from :data:`TEMPLATES`."""

    template: str
    shift: int = 1  # get_shift's offset / fill_loop's multiplier


@dataclass(frozen=True)
class Op:
    """One line of ``main``'s body.

    ``kind``: ``call`` (apply helper ``helper`` to target ``target``),
    ``sub``/``update``/``nth``/``hd`` (direct builtin access with a
    literal index), ``len`` (length read), or ``arith`` (accumulator
    arithmetic; the operator and literal travel in ``value``).
    ``value`` is ``("lit", n)`` or ``("acc",)`` for writes, and
    ``(op, n)`` for ``arith``.
    """

    kind: str
    helper: int = 0
    target: int = 0
    idx: int = 0
    value: tuple = ("lit", 0)


@dataclass(frozen=True)
class ProgramSpec:
    arrays: tuple[ArrayDecl, ...]
    lists: tuple[ListDecl, ...]
    helpers: tuple[HelperDecl, ...]
    ops: tuple[Op, ...]


@dataclass(frozen=True)
class Rendered:
    source: str
    truths: tuple[SiteTruth, ...]


@dataclass(frozen=True)
class GenConfig:
    decls: int = 3  # helper instances drawn
    depth: int = 8  # ops in main's body
    max_size: int = 8  # max array/list element count
    big_bias: float = 0.3  # P(an int literal is near/over int64)


# ---------------------------------------------------------------------------
# Template library
# ---------------------------------------------------------------------------
#
# Each template renders a standalone helper declaration.  The shapes are
# the corpus programs' own proven idioms (dotprod's counting loop,
# bcopy's copy loop, listaccess's nth/hd wrappers), so ``eliminable``
# templates are known-provable for the fourier backend — the generator
# test suite pins that assumption across many seeds.


@dataclass(frozen=True)
class Template:
    key: str
    kind: str  # "array" | "list"
    takes: str  # "idx" | "idx_val" | "none"
    result: str  # "int" | "unit"
    op: str  # site op in the body
    eliminable: bool
    #: Minimum target size for a *valid* call (structural guard).
    min_size: Callable[[int], int]  # shift -> size floor
    #: Valid literal index range for a call, or None when any int goes.
    idx_range: Callable[[int, int], tuple[int, int] | None]  # (size, shift)
    render: Callable[[str, int], tuple[list[str], int]]  # -> (lines, site line offset)


def _any_idx(size: int, shift: int) -> None:
    return None


def _t_get_ok(name: str, shift: int) -> tuple[list[str], int]:
    return [
        f"fun {name}(a, i) = sub(a, i)",
        f"where {name} <| {{n:nat}} {{i:nat | i < n}} "
        "int array(n) * int(i) -> int",
    ], 0


def _t_get_shift(name: str, shift: int) -> tuple[list[str], int]:
    return [
        f"fun {name}(a, i) = sub(a, i + {shift})",
        f"where {name} <| {{n:nat}} {{i:nat | i + {shift} < n}} "
        "int array(n) * int(i) -> int",
    ], 0


def _t_get_any(name: str, shift: int) -> tuple[list[str], int]:
    return [
        f"fun {name}(a, i) = sub(a, i)",
        f"where {name} <| {{n:nat}} int array(n) * int -> int",
    ], 0


def _t_get_last(name: str, shift: int) -> tuple[list[str], int]:
    return [
        f"fun {name}(a) = sub(a, length a - 1)",
        f"where {name} <| {{n:nat | n >= 1}} int array(n) -> int",
    ], 0


def _t_rev_get(name: str, shift: int) -> tuple[list[str], int]:
    return [
        f"fun {name}(a, i) = sub(a, length a - 1 - i)",
        f"where {name} <| {{n:nat}} {{i:nat | i < n}} "
        "int array(n) * int(i) -> int",
    ], 0


def _t_set_ok(name: str, shift: int) -> tuple[list[str], int]:
    return [
        f"fun {name}(a, i, v) = update(a, i, v)",
        f"where {name} <| {{n:nat}} {{i:nat | i < n}} "
        "int array(n) * int(i) * int -> unit",
    ], 0


def _t_set_any(name: str, shift: int) -> tuple[list[str], int]:
    return [
        f"fun {name}(a, i, v) = update(a, i, v)",
        f"where {name} <| {{n:nat}} int array(n) * int * int -> unit",
    ], 0


def _t_sum_loop(name: str, shift: int) -> tuple[list[str], int]:
    go = f"go_{name}"
    return [
        f"fun {name}(a) = let",
        f"  fun {go}(i, k, acc) =",
        f"    if i = k then acc",
        f"    else {go}(i + 1, k, acc + sub(a, i))",
        f"  where {go} <| {{k:nat | k <= m}} {{i:nat | i <= k}} "
        "int(i) * int(k) * int -> int",
        f"in {go}(0, length a, 0) end",
        f"where {name} <| {{m:nat}} int array(m) -> int",
    ], 3


def _t_fill_loop(name: str, shift: int) -> tuple[list[str], int]:
    go = f"go_{name}"
    return [
        f"fun {name}(a) = let",
        f"  fun {go}(i, k) =",
        f"    if i = k then ()",
        f"    else (update(a, i, i * {shift}); {go}(i + 1, k))",
        f"  where {go} <| {{k:nat | k <= m}} {{i:nat | i <= k}} "
        "int(i) * int(k) -> unit",
        f"in {go}(0, length a) end",
        f"where {name} <| {{m:nat}} int array(m) -> unit",
    ], 3


def _t_nth_ok(name: str, shift: int) -> tuple[list[str], int]:
    return [
        f"fun {name}(l, i) = nth(l, i)",
        f"where {name} <| {{n:nat}} {{i:nat | i < n}} "
        "int list(n) * int(i) -> int",
    ], 0


def _t_nth_any(name: str, shift: int) -> tuple[list[str], int]:
    return [
        f"fun {name}(l, i) = nth(l, i)",
        f"where {name} <| {{n:nat}} int list(n) * int -> int",
    ], 0


def _t_hd_ok(name: str, shift: int) -> tuple[list[str], int]:
    return [
        f"fun {name}(l) = hd(l)",
        f"where {name} <| {{n:nat | n >= 1}} int list(n) -> int",
    ], 0


TEMPLATES: dict[str, Template] = {
    t.key: t
    for t in [
        Template("get_ok", "array", "idx", "int", "sub", True,
                 lambda s: 1, lambda size, s: (0, size), _t_get_ok),
        Template("get_shift", "array", "idx", "int", "sub", True,
                 lambda s: s + 1, lambda size, s: (0, size - s),
                 _t_get_shift),
        Template("get_any", "array", "idx", "int", "sub", False,
                 lambda s: 0, _any_idx, _t_get_any),
        Template("get_last", "array", "none", "int", "sub", True,
                 lambda s: 1, _any_idx, _t_get_last),
        Template("rev_get", "array", "idx", "int", "sub", True,
                 lambda s: 1, lambda size, s: (0, size), _t_rev_get),
        Template("set_ok", "array", "idx_val", "unit", "update", True,
                 lambda s: 1, lambda size, s: (0, size), _t_set_ok),
        Template("set_any", "array", "idx_val", "unit", "update", False,
                 lambda s: 0, _any_idx, _t_set_any),
        Template("sum_loop", "array", "none", "int", "sub", True,
                 lambda s: 0, _any_idx, _t_sum_loop),
        Template("fill_loop", "array", "none", "unit", "update", True,
                 lambda s: 0, _any_idx, _t_fill_loop),
        Template("nth_ok", "list", "idx", "int", "nth", True,
                 lambda s: 1, lambda size, s: (0, size), _t_nth_ok),
        Template("nth_any", "list", "idx", "int", "nth", False,
                 lambda s: 0, _any_idx, _t_nth_any),
        Template("hd_ok", "list", "none", "int", "hd", True,
                 lambda s: 1, _any_idx, _t_hd_ok),
    ]
}

_ARRAY_TEMPLATES = [k for k, t in TEMPLATES.items() if t.kind == "array"]
_LIST_TEMPLATES = [k for k, t in TEMPLATES.items() if t.kind == "list"]

#: int64-boundary literals: the fitting edge cases and the overflowing
#: ones that force the packed/numpy repack paths.
BIG_LITERALS = (
    2 ** 63 - 1,
    -(2 ** 63),
    2 ** 62,
    3 * 2 ** 62,
    2 ** 63,
    2 ** 64 + 9,
    -(2 ** 63) - 1,
)


# ---------------------------------------------------------------------------
# Generation
# ---------------------------------------------------------------------------


def _literal(rng: random.Random, big_bias: float) -> int:
    if rng.random() < big_bias:
        return rng.choice(BIG_LITERALS)
    return rng.randrange(-9, 100)


def _target_size(spec_arrays: list[ArrayDecl], ai: int) -> int:
    return spec_arrays[ai].size


def generate(rng: random.Random, config: GenConfig = GenConfig()) -> ProgramSpec:
    """Draw one program spec from the grammar."""
    arrays: list[ArrayDecl] = []
    for i in range(1 + rng.randrange(3)):
        # The first array is always non-empty so constrained templates
        # have a valid target; later ones may be empty (size 0), which
        # keeps the unified-empty-representation path under test.
        size = (1 + rng.randrange(config.max_size) if i == 0
                else rng.randrange(config.max_size + 1))
        if rng.random() < 0.3:
            arrays.append(ArrayDecl(
                size=size, tab=True,
                mul=rng.randrange(4),
                add=_literal(rng, config.big_bias),
            ))
        else:
            arrays.append(ArrayDecl(size=size, init=_literal(rng, config.big_bias)))

    lists: list[ListDecl] = []
    for _ in range(rng.randrange(3)):
        items = tuple(rng.randrange(-9, 50)
                      for _ in range(1 + rng.randrange(4)))
        lists.append(ListDecl(items=items))

    pool = _ARRAY_TEMPLATES + (_LIST_TEMPLATES if lists else [])
    helpers = tuple(
        HelperDecl(template=rng.choice(pool), shift=1 + rng.randrange(2))
        for _ in range(max(1, config.decls))
    )

    ops: list[Op] = []
    for _ in range(config.depth):
        ops.append(_gen_op(rng, config, arrays, lists, helpers))

    return ProgramSpec(
        arrays=tuple(arrays), lists=tuple(lists),
        helpers=helpers, ops=tuple(ops),
    )


def _gen_op(
    rng: random.Random,
    config: GenConfig,
    arrays: list[ArrayDecl],
    lists: list[ListDecl],
    helpers: tuple[HelperDecl, ...],
) -> Op:
    roll = rng.random()
    if roll < 0.45 and helpers:
        op = _gen_call(rng, config, arrays, lists, helpers)
        if op is not None:
            return op
        # No valid target for the drawn helper: degrade to arithmetic.
    if roll < 0.70:
        ai = rng.randrange(len(arrays))
        size = arrays[ai].size
        idx = rng.randrange(size + 3)  # OOB with probability ~3/(size+3)
        if rng.random() < 0.5:
            return Op("sub", target=ai, idx=idx)
        return Op("update", target=ai, idx=idx,
                  value=_gen_value(rng, config))
    if roll < 0.80 and lists:
        li = rng.randrange(len(lists))
        if rng.random() < 0.7:
            idx = rng.randrange(len(lists[li].items) + 2)
            return Op("nth", target=li, idx=idx)
        return Op("hd", target=li)
    if roll < 0.87:
        return Op("len", target=rng.randrange(len(arrays)))
    return _gen_arith(rng, config)


def _gen_value(rng: random.Random, config: GenConfig) -> tuple:
    if rng.random() < 0.25:
        return ("acc",)
    # Writes lean harder on boundary literals: update-of-a-bignum is
    # the repack-on-overflow trigger.
    return ("lit", _literal(rng, min(1.0, config.big_bias * 1.8)))


def _gen_arith(rng: random.Random, config: GenConfig) -> Op:
    kind = rng.choice(["+", "+", "-", "*", "div", "mod"])
    if kind in ("div", "mod"):
        lit = 1 + rng.randrange(9)  # nonzero by construction
    elif kind == "*":
        lit = rng.choice([2, 3, 5, 7, 2 ** 31])
    else:
        lit = _literal(rng, config.big_bias)
    return Op("arith", value=(kind, lit))


def _gen_call(
    rng: random.Random,
    config: GenConfig,
    arrays: list[ArrayDecl],
    lists: list[ListDecl],
    helpers: tuple[HelperDecl, ...],
) -> Op | None:
    hi = rng.randrange(len(helpers))
    helper = helpers[hi]
    t = TEMPLATES[helper.template]
    sizes = ([a.size for a in arrays] if t.kind == "array"
             else [len(x.items) for x in lists])
    floor = t.min_size(helper.shift)
    candidates = [i for i, size in enumerate(sizes) if size >= floor]
    if not candidates:
        return None
    target = rng.choice(candidates)
    size = sizes[target]

    idx = 0
    if t.takes in ("idx", "idx_val"):
        span = t.idx_range(size, helper.shift)
        if span is None:
            # Unconstrained index: anything goes, including negative
            # and past-the-end (the body's kept check fields it).
            idx = rng.randrange(-1, size + 3)
        else:
            lo, hi_excl = span
            idx = lo + rng.randrange(hi_excl - lo)
    value = _gen_value(rng, config) if t.takes == "idx_val" else ("lit", 0)
    return Op("call", helper=hi, target=target, idx=idx, value=value)


# ---------------------------------------------------------------------------
# Rendering
# ---------------------------------------------------------------------------


def _int(n: int) -> str:
    # The grammar has no negative literals; subtraction from zero is
    # the corpus-idiomatic spelling.
    return str(n) if n >= 0 else f"(0 - {-n})"


def render(spec: ProgramSpec) -> Rendered:
    """Render a spec to DML source plus per-site ground truth."""
    lines: list[str] = []
    truths: list[SiteTruth] = []

    used = {op.helper for op in spec.ops if op.kind == "call"}
    names: dict[int, str] = {}
    for hi, helper in enumerate(spec.helpers):
        if hi not in used:
            continue
        name = f"h{hi}"
        names[hi] = name
        t = TEMPLATES[helper.template]
        body, site_offset = t.render(name, helper.shift)
        truths.append(SiteTruth(
            line=len(lines) + 1 + site_offset,
            op=t.op, eliminable=t.eliminable, note=helper.template,
        ))
        lines.extend(body)
        lines.append("")

    lines.append("fun main(u) = let")
    for ai, a in enumerate(spec.arrays):
        if a.tab:
            lines.append(f"  val a{ai} = tabulate({a.size}, "
                         f"fn j => j * {a.mul} + {_int(a.add)})")
        else:
            lines.append(f"  val a{ai} = array({a.size}, {_int(a.init)})")
    for li, l in enumerate(spec.lists):
        chain = " :: ".join(_int(x) for x in l.items)
        lines.append(f"  val l{li} = {chain} :: nil")
    lines.append("  val s0 = 0")

    acc = 0
    for op in spec.ops:
        line_no = len(lines) + 1

        def value_expr(value: tuple) -> str:
            return f"s{acc}" if value[0] == "acc" else _int(value[1])

        if op.kind == "call":
            helper = spec.helpers[op.helper]
            t = TEMPLATES[helper.template]
            base = f"{'l' if t.kind == 'list' else 'a'}{op.target}"
            if t.takes == "idx":
                args = f"{base}, {_int(op.idx)}"
            elif t.takes == "idx_val":
                args = f"{base}, {_int(op.idx)}, {value_expr(op.value)}"
            else:
                args = base
            call = f"{names[op.helper]}({args})"
            if t.result == "int":
                lines.append(f"  val s{acc + 1} = s{acc} + {call}")
                acc += 1
            else:
                lines.append(f"  val _ = {call}")
        elif op.kind == "sub":
            size = spec.arrays[op.target].size
            lines.append(f"  val s{acc + 1} = s{acc} + "
                         f"sub(a{op.target}, {op.idx})")
            acc += 1
            truths.append(SiteTruth(line_no, "sub", op.idx < size, "direct"))
        elif op.kind == "update":
            size = spec.arrays[op.target].size
            lines.append(f"  val _ = update(a{op.target}, {op.idx}, "
                         f"{value_expr(op.value)})")
            truths.append(SiteTruth(line_no, "update", op.idx < size,
                                    "direct"))
        elif op.kind == "nth":
            length = len(spec.lists[op.target].items)
            lines.append(f"  val s{acc + 1} = s{acc} + "
                         f"nth(l{op.target}, {op.idx})")
            acc += 1
            truths.append(SiteTruth(line_no, "nth", op.idx < length,
                                    "direct"))
        elif op.kind == "hd":
            # Generated lists are never empty, so a direct hd is always
            # eliminable; OOB tag behaviour comes from nth instead.
            lines.append(f"  val s{acc + 1} = s{acc} + hd(l{op.target})")
            acc += 1
            truths.append(SiteTruth(line_no, "hd", True, "direct"))
        elif op.kind == "len":
            lines.append(f"  val s{acc + 1} = s{acc} + length a{op.target}")
            acc += 1
        elif op.kind == "arith":
            kind, lit = op.value
            lines.append(f"  val s{acc + 1} = s{acc} {kind} {_int(lit)}")
            acc += 1
        else:  # pragma: no cover - spec invariant
            raise ValueError(f"unknown op kind {op.kind!r}")

    lines.append(f"in s{acc} end")
    lines.append("where main <| int -> int")
    return Rendered(source="\n".join(lines) + "\n", truths=tuple(truths))


def generate_rendered(seed_key: str, config: GenConfig = GenConfig()) -> Rendered:
    """Convenience: seed-string to rendered program in one call."""
    return render(generate(random.Random(seed_key), config))
