"""Deliberately broken dialect variants (fuzzer self-test).

The acceptance bar for a bug-finding subsystem is that it finds bugs:
these dialects re-introduce, behind an opt-in flag, exactly the
defects the fuzzer was built to catch, so CI can assert that a bounded
run flags them and the shrinker reduces the repro below twenty source
lines.  They are never registered in the dialect registry — only
``repro fuzz --fault NAME`` and the self-tests construct them, via
:data:`FAULTS`.

* ``overflow-update`` — the packed dialect with repack-on-overflow
  removed: an ``update`` whose value leaves int64 raises
  ``OverflowError`` instead of demoting the buffer (the pre-fix
  behaviour this PR repairs);
* ``oob-read`` — the packed dialect with every *unchecked* read
  shifted by one: a certificate-gated build returns wrong values (or
  raises ``IndexError`` at the boundary) exactly where the solver
  eliminated a check, the worst-case miscompile the certificate is
  supposed to prevent.

Both override :meth:`prelude` to shadow the healthy runtime helpers
with local buggy definitions inside the generated module — the real
helpers in :mod:`repro.compile.dialects.packed` stay intact.
"""

from __future__ import annotations

from repro.compile.dialects.base import parens
from repro.compile.dialects.packed import PackedDialect


class OverflowUpdateFault(PackedDialect):
    """Packed writes without the repack-on-overflow catch."""

    name = "packed@overflow-update"
    description = "packed minus repack-on-overflow (self-test fault)"

    def prelude(self) -> str:
        return (
            "from repro.compile.dialects.packed import _mk_arr, _mk_tab\n"
            "def _upd_pk(a, i, v):\n"
            "    a.buf[i] = v\n"
            "    return ()\n"
            "def _updc_pk(a, i, v):\n"
            "    if not 0 <= i < len(a.buf):\n"
            "        _oob(i)\n"
            "    a.buf[i] = v\n"
            "    return ()\n"
        )


class OobReadFault(PackedDialect):
    """Unchecked packed reads displaced by one element."""

    name = "packed@oob-read"
    description = "packed with off-by-one unchecked reads (self-test fault)"

    def emit_read(self, array: str, index: str, checked: bool) -> str:
        if checked:
            return f"_subc({array}, {index})"
        return f"{parens(array)}.buf[({index}) + 1]"


FAULTS = {
    "overflow-update": OverflowUpdateFault,
    "oob-read": OobReadFault,
}


def get_fault(name: str):
    """Instantiate a fault dialect by key (KeyError on unknown)."""
    return FAULTS[name]()
