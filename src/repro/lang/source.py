"""Source text handling: positions, spans and line/column mapping.

Every token and AST node produced by :mod:`repro.lang` carries a
:class:`Span` into the original source so that diagnostics (type errors,
unsolved constraints) can point at the offending code, mirroring how the
paper's prototype reports unsolved constraints back to the programmer.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass, field


@dataclass(frozen=True)
class Span:
    """A half-open byte range ``[start, end)`` in a source file."""

    start: int
    end: int

    def merge(self, other: "Span") -> "Span":
        """The smallest span covering both ``self`` and ``other``."""
        return Span(min(self.start, other.start), max(self.end, other.end))

    @staticmethod
    def point(offset: int) -> "Span":
        return Span(offset, offset)


DUMMY_SPAN = Span(0, 0)


@dataclass
class SourceFile:
    """Source text plus a lazily built line index for error reporting."""

    text: str
    name: str = "<input>"
    _line_starts: list[int] = field(default_factory=list, repr=False)

    def _ensure_index(self) -> None:
        if not self._line_starts:
            starts = [0]
            for i, ch in enumerate(self.text):
                if ch == "\n":
                    starts.append(i + 1)
            self._line_starts = starts

    def line_col(self, offset: int) -> tuple[int, int]:
        """1-based (line, column) of a byte offset."""
        self._ensure_index()
        offset = max(0, min(offset, len(self.text)))
        line = bisect.bisect_right(self._line_starts, offset) - 1
        return line + 1, offset - self._line_starts[line] + 1

    def line_text(self, line: int) -> str:
        """The text of a 1-based line, without its trailing newline."""
        self._ensure_index()
        if not 1 <= line <= len(self._line_starts):
            return ""
        start = self._line_starts[line - 1]
        end = self.text.find("\n", start)
        if end < 0:
            end = len(self.text)
        return self.text[start:end]

    def describe(self, span: Span) -> str:
        """Human readable ``file:line:col`` prefix for a span."""
        line, col = self.line_col(span.start)
        return f"{self.name}:{line}:{col}"

    def excerpt(self, span: Span) -> str:
        """A two-line caret excerpt pointing at ``span``."""
        line, col = self.line_col(span.start)
        text = self.line_text(line)
        width = max(1, min(span.end, len(self.text)) - span.start)
        if span.end > span.start:
            end_line, end_col = self.line_col(span.end)
            if end_line == line:
                width = max(1, end_col - col)
            else:
                width = max(1, len(text) - col + 1)
        caret = " " * (col - 1) + "^" * width
        return f"{text}\n{caret}"
