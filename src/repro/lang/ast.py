"""Surface abstract syntax for DML-lite.

The language covers the fragment of ML used by the paper's prototype:
recursion, higher-order functions, ML polymorphism (with the value
restriction), datatypes, pattern matching, and arrays — extended with
the paper's concrete dependent-type syntax:

* ``assert name <| ty`` for pervasive dependent signatures,
* ``typeref tycon of sorts with con <| ty | ...`` for datatype
  refinement,
* ``where name <| ty`` clauses giving the dependent types of
  (possibly local) recursive functions,
* ``{a:sort | guard} ty`` universal and ``[a:sort | guard] ty``
  existential dependent types.

Index expressions inside types reuse :class:`repro.indices.terms`
directly — the parser builds semantic index terms, so no separate
surface index AST is needed.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.indices.sorts import Sort
from repro.indices.terms import IndexTerm
from repro.lang.source import DUMMY_SPAN, Span

# ---------------------------------------------------------------------------
# Surface types
# ---------------------------------------------------------------------------


@dataclass
class SType:
    """Base class for surface type expressions."""

    span: Span = field(default=DUMMY_SPAN, kw_only=True)


@dataclass
class STyVar(SType):
    """A type variable such as ``'a``."""

    name: str

    def __str__(self) -> str:
        return self.name


@dataclass
class STyCon(SType):
    """``(ty1, ..., tyk) name (i1, ..., im)`` — a possibly indexed
    application of a type constructor; either argument list may be
    empty (``int``, ``int(n)``, ``'a array``, ``'a array(n)``...)."""

    name: str
    tyargs: list[SType] = field(default_factory=list)
    iargs: list[IndexTerm] = field(default_factory=list)

    def __str__(self) -> str:
        prefix = ""
        if len(self.tyargs) == 1:
            prefix = f"{self.tyargs[0]} "
        elif self.tyargs:
            prefix = "(" + ", ".join(str(t) for t in self.tyargs) + ") "
        suffix = ""
        if self.iargs:
            suffix = "(" + ", ".join(str(i) for i in self.iargs) + ")"
        return f"{prefix}{self.name}{suffix}"


@dataclass
class STyTuple(SType):
    """``ty1 * ... * tyn`` (n >= 2) or ``unit`` (n = 0)."""

    items: list[SType]

    def __str__(self) -> str:
        if not self.items:
            return "unit"
        return " * ".join(
            f"({t})" if isinstance(t, (STyTuple, STyArrow)) else str(t)
            for t in self.items
        )


@dataclass
class STyArrow(SType):
    dom: SType
    cod: SType

    def __str__(self) -> str:
        dom = f"({self.dom})" if isinstance(self.dom, STyArrow) else str(self.dom)
        return f"{dom} -> {self.cod}"


@dataclass
class Binder:
    """One index binder ``name : sort`` inside a quantifier."""

    name: str
    sort: Sort
    span: Span = field(default=DUMMY_SPAN, kw_only=True)

    def __str__(self) -> str:
        return f"{self.name}:{self.sort}"


@dataclass
class STyPi(SType):
    """``{a1:s1, ..., ak:sk | guard} ty`` — dependent function space.

    ``guard`` is ``None`` when no ``|`` condition was written.
    """

    binders: list[Binder]
    guard: Optional[IndexTerm]
    body: SType

    def __str__(self) -> str:
        binders = ", ".join(str(b) for b in self.binders)
        guard = f" | {self.guard}" if self.guard is not None else ""
        return f"{{{binders}{guard}}} {self.body}"


@dataclass
class STySig(SType):
    """``[a1:s1, ..., ak:sk | guard] ty`` — existential dependent type."""

    binders: list[Binder]
    guard: Optional[IndexTerm]
    body: SType

    def __str__(self) -> str:
        binders = ", ".join(str(b) for b in self.binders)
        guard = f" | {self.guard}" if self.guard is not None else ""
        return f"[{binders}{guard}] {self.body}"


# ---------------------------------------------------------------------------
# Patterns
# ---------------------------------------------------------------------------


@dataclass
class Pattern:
    span: Span = field(default=DUMMY_SPAN, kw_only=True)


@dataclass
class PWild(Pattern):
    def __str__(self) -> str:
        return "_"


@dataclass
class PVar(Pattern):
    name: str

    def __str__(self) -> str:
        return self.name


@dataclass
class PInt(Pattern):
    value: int

    def __str__(self) -> str:
        return str(self.value)


@dataclass
class PBool(Pattern):
    value: bool

    def __str__(self) -> str:
        return "true" if self.value else "false"


@dataclass
class PTuple(Pattern):
    items: list[Pattern]

    def __str__(self) -> str:
        return "(" + ", ".join(str(p) for p in self.items) + ")"


@dataclass
class PCon(Pattern):
    """Constructor pattern; ``arg`` is ``None`` for nullary
    constructors.  ``x :: xs`` parses as ``PCon("::", PTuple([x, xs]))``."""

    name: str
    arg: Optional[Pattern] = None

    def __str__(self) -> str:
        if self.name == "::" and isinstance(self.arg, PTuple):
            head, tail = self.arg.items
            return f"({head} :: {tail})"
        if self.arg is None:
            return self.name
        return f"{self.name}({self.arg})"


# ---------------------------------------------------------------------------
# Expressions
# ---------------------------------------------------------------------------


@dataclass
class Expr:
    span: Span = field(default=DUMMY_SPAN, kw_only=True)


@dataclass
class EInt(Expr):
    value: int

    def __str__(self) -> str:
        return str(self.value)


@dataclass
class EBool(Expr):
    value: bool

    def __str__(self) -> str:
        return "true" if self.value else "false"


@dataclass
class EUnit(Expr):
    def __str__(self) -> str:
        return "()"


@dataclass
class EVar(Expr):
    name: str

    def __str__(self) -> str:
        return self.name


@dataclass
class ECon(Expr):
    """A datatype constructor used as an expression."""

    name: str

    def __str__(self) -> str:
        return self.name


@dataclass
class EApp(Expr):
    fn: Expr
    arg: Expr

    def __str__(self) -> str:
        return f"{self.fn} {_atom_str(self.arg)}"


@dataclass
class ETuple(Expr):
    items: list[Expr]

    def __str__(self) -> str:
        return "(" + ", ".join(str(e) for e in self.items) + ")"


@dataclass
class EIf(Expr):
    cond: Expr
    then: Expr
    els: Expr

    def __str__(self) -> str:
        return f"if {self.cond} then {self.then} else {self.els}"


@dataclass
class EAndAlso(Expr):
    left: Expr
    right: Expr

    def __str__(self) -> str:
        return f"({self.left} andalso {self.right})"


@dataclass
class EOrElse(Expr):
    left: Expr
    right: Expr

    def __str__(self) -> str:
        return f"({self.left} orelse {self.right})"


@dataclass
class ELet(Expr):
    decls: list["Decl"]
    body: Expr

    def __str__(self) -> str:
        decls = " ".join(str(d) for d in self.decls)
        return f"let {decls} in {self.body} end"


@dataclass
class ECase(Expr):
    scrutinee: Expr
    clauses: list[tuple[Pattern, Expr]]

    def __str__(self) -> str:
        arms = " | ".join(f"{p} => {e}" for p, e in self.clauses)
        return f"(case {self.scrutinee} of {arms})"


@dataclass
class EFn(Expr):
    param: Pattern
    body: Expr

    def __str__(self) -> str:
        return f"(fn {self.param} => {self.body})"


@dataclass
class ERaise(Expr):
    """``raise e`` — raises the exception value ``e`` (type ``exn``)."""

    expr: Expr

    def __str__(self) -> str:
        return f"raise {self.expr}"


@dataclass
class EHandle(Expr):
    """``e handle p1 => e1 | ...`` — exception handler.

    An unmatched exception re-raises, as in SML.
    """

    expr: Expr
    clauses: list[tuple[Pattern, Expr]]

    def __str__(self) -> str:
        arms = " | ".join(f"{p} => {e}" for p, e in self.clauses)
        return f"({self.expr} handle {arms})"


@dataclass
class ESeq(Expr):
    """``(e1; e2; ...; en)`` — evaluate all, yield the last value."""

    items: list[Expr]

    def __str__(self) -> str:
        return "(" + "; ".join(str(e) for e in self.items) + ")"


@dataclass
class EAnnot(Expr):
    """``e : ty`` — a checking-mode type ascription."""

    expr: Expr
    ty: SType

    def __str__(self) -> str:
        return f"({self.expr} : {self.ty})"


def _atom_str(expr: Expr) -> str:
    if isinstance(expr, (EInt, EBool, EVar, ECon, ETuple, EUnit)):
        return str(expr)
    return f"({expr})"


# ---------------------------------------------------------------------------
# Declarations
# ---------------------------------------------------------------------------


@dataclass
class Decl:
    span: Span = field(default=DUMMY_SPAN, kw_only=True)


@dataclass
class Clause:
    """One ``fun`` clause: ``f p1 ... pk = body``.

    A tupled definition ``fun f(x, y) = e`` has a single tuple-pattern
    parameter; a curried one ``fun filter p nil = e`` has several.
    """

    params: list[Pattern]
    body: Expr
    span: Span = field(default=DUMMY_SPAN, kw_only=True)


@dataclass
class FunBinding:
    """One binding of a (possibly mutually recursive) ``fun`` group."""

    name: str
    #: Explicitly scoped type variables: ``fun('a) f ...``.
    typarams: list[str]
    #: Explicitly scoped index binders: ``fun{size:nat} f ...``.
    ixparams: list[Binder]
    clauses: list[Clause]
    #: The dependent type from the ``where name <| ty`` clause.
    where_type: Optional[SType]
    span: Span = field(default=DUMMY_SPAN, kw_only=True)


@dataclass
class DFun(Decl):
    bindings: list[FunBinding]

    def __str__(self) -> str:
        names = ", ".join(b.name for b in self.bindings)
        return f"fun {names} ..."


@dataclass
class DVal(Decl):
    pat: Pattern
    expr: Expr
    #: Optional ``where`` / ascription type.
    where_type: Optional[SType] = None

    def __str__(self) -> str:
        return f"val {self.pat} = {self.expr}"


@dataclass
class ConDef:
    """One constructor in a ``datatype`` declaration."""

    name: str
    arg: Optional[SType]
    span: Span = field(default=DUMMY_SPAN, kw_only=True)


@dataclass
class DDatatype(Decl):
    name: str
    tyvars: list[str]
    constructors: list[ConDef]

    def __str__(self) -> str:
        return f"datatype {self.name}"


@dataclass
class RefClause:
    """One ``con <| ty`` clause of a ``typeref`` declaration."""

    con: str
    ty: SType
    span: Span = field(default=DUMMY_SPAN, kw_only=True)


@dataclass
class DTyperef(Decl):
    """``typeref 'a list of nat with nil <| ... | :: <| ...``."""

    tycon: str
    sorts: list[Sort]
    clauses: list[RefClause]

    def __str__(self) -> str:
        return f"typeref {self.tycon}"


@dataclass
class DAssert(Decl):
    """``assert name <| ty and name2 <| ty2 ...`` — trusted dependent
    signatures for pervasives (Section 2.1)."""

    items: list[tuple[str, SType]]

    def __str__(self) -> str:
        names = ", ".join(name for name, _ in self.items)
        return f"assert {names}"


@dataclass
class DException(Decl):
    """``exception Name [of ty]`` — declares a constructor of the
    built-in ``exn`` type (Section 6's first future-work item)."""

    name: str
    arg: Optional[SType] = None

    def __str__(self) -> str:
        return f"exception {self.name}"


@dataclass
class DTypeAbbrev(Decl):
    """``type name = ty`` — a transparent abbreviation (Figure 5's
    ``intPrefix``)."""

    name: str
    ty: SType

    def __str__(self) -> str:
        return f"type {self.name} = {self.ty}"


@dataclass
class Program:
    decls: list[Decl]
    span: Span = field(default=DUMMY_SPAN, kw_only=True)
