"""Pretty printer for DML-lite programs.

Renders AST back to concrete syntax that the parser accepts, such that
``parse(pretty(parse(src)))`` is structurally identical to
``parse(src)`` — the round-trip property the test suite checks over
the whole corpus.  The printer is conservative with parentheses rather
than minimal: correctness of the round trip beats prettiness.
"""

from __future__ import annotations

from repro.lang import ast

#: Operator names rendered infix.
_INFIX = {"+", "-", "*", "div", "mod", "=", "<>", "<", "<=", ">", ">="}


# ---------------------------------------------------------------------------
# Types
# ---------------------------------------------------------------------------


def pretty_type(ty: ast.SType) -> str:
    if isinstance(ty, ast.STyVar):
        return ty.name
    if isinstance(ty, ast.STyCon):
        prefix = ""
        if len(ty.tyargs) == 1:
            prefix = _atomic_type(ty.tyargs[0]) + " "
        elif ty.tyargs:
            prefix = "(" + ", ".join(pretty_type(t) for t in ty.tyargs) + ") "
        suffix = ""
        if ty.iargs:
            suffix = "(" + ", ".join(str(i) for i in ty.iargs) + ")"
        return f"{prefix}{ty.name}{suffix}"
    if isinstance(ty, ast.STyTuple):
        if not ty.items:
            return "unit"
        return " * ".join(_atomic_type(t) for t in ty.items)
    if isinstance(ty, ast.STyArrow):
        dom = pretty_type(ty.dom)
        if isinstance(ty.dom, ast.STyArrow):
            dom = f"({dom})"
        return f"{dom} -> {pretty_type(ty.cod)}"
    if isinstance(ty, (ast.STyPi, ast.STySig)):
        opener, closer = ("{", "}") if isinstance(ty, ast.STyPi) else ("[", "]")
        binders = ", ".join(f"{b.name}:{b.sort}" for b in ty.binders)
        guard = f" | {ty.guard}" if ty.guard is not None else ""
        return f"{opener}{binders}{guard}{closer} {pretty_type(ty.body)}"
    raise AssertionError(f"unknown type {ty!r}")


def _atomic_type(ty: ast.SType) -> str:
    text = pretty_type(ty)
    if isinstance(ty, (ast.STyTuple, ast.STyArrow, ast.STyPi, ast.STySig)):
        if not (isinstance(ty, ast.STyTuple) and not ty.items):
            return f"({text})"
    if isinstance(ty, ast.STyCon) and ty.tyargs:
        return f"({text})"
    return text


# ---------------------------------------------------------------------------
# Patterns
# ---------------------------------------------------------------------------


def pretty_pattern(pat: ast.Pattern) -> str:
    if isinstance(pat, ast.PWild):
        return "_"
    if isinstance(pat, ast.PVar):
        return pat.name
    if isinstance(pat, ast.PInt):
        return str(pat.value) if pat.value >= 0 else f"(~{-pat.value})"
    if isinstance(pat, ast.PBool):
        return "true" if pat.value else "false"
    if isinstance(pat, ast.PTuple):
        return "(" + ", ".join(pretty_pattern(p) for p in pat.items) + ")"
    if isinstance(pat, ast.PCon):
        if pat.name == "::" and isinstance(pat.arg, ast.PTuple):
            head, tail = pat.arg.items
            return f"({pretty_pattern(head)} :: {pretty_pattern(tail)})"
        if pat.arg is None:
            return pat.name
        return f"{pat.name}{_atomic_pattern(pat.arg)}"
    raise AssertionError(f"unknown pattern {pat!r}")


def _atomic_pattern(pat: ast.Pattern) -> str:
    text = pretty_pattern(pat)
    if text.startswith("("):
        return text
    return f"({text})"


# ---------------------------------------------------------------------------
# Expressions
# ---------------------------------------------------------------------------


def pretty_expr(expr: ast.Expr) -> str:
    if isinstance(expr, ast.EInt):
        return str(expr.value) if expr.value >= 0 else f"(~{-expr.value})"
    if isinstance(expr, ast.EBool):
        return "true" if expr.value else "false"
    if isinstance(expr, ast.EUnit):
        return "()"
    if isinstance(expr, ast.EVar):
        if expr.name in _INFIX or expr.name == "~":
            return f"(op {expr.name})"
        return expr.name
    if isinstance(expr, ast.ECon):
        return expr.name
    if isinstance(expr, ast.EApp):
        return _pretty_app(expr)
    if isinstance(expr, ast.ETuple):
        return "(" + ", ".join(pretty_expr(e) for e in expr.items) + ")"
    if isinstance(expr, ast.EIf):
        return (
            f"(if {pretty_expr(expr.cond)} then {pretty_expr(expr.then)} "
            f"else {pretty_expr(expr.els)})"
        )
    if isinstance(expr, ast.EAndAlso):
        return f"({pretty_expr(expr.left)} andalso {pretty_expr(expr.right)})"
    if isinstance(expr, ast.EOrElse):
        return f"({pretty_expr(expr.left)} orelse {pretty_expr(expr.right)})"
    if isinstance(expr, ast.ELet):
        decls = " ".join(pretty_decl(d) for d in expr.decls)
        return f"let {decls} in {pretty_expr(expr.body)} end"
    if isinstance(expr, ast.ECase):
        arms = " | ".join(
            f"{pretty_pattern(p)} => {pretty_expr(e)}" for p, e in expr.clauses
        )
        return f"(case {pretty_expr(expr.scrutinee)} of {arms})"
    if isinstance(expr, ast.EFn):
        return f"(fn {pretty_pattern(expr.param)} => {pretty_expr(expr.body)})"
    if isinstance(expr, ast.ESeq):
        return "(" + "; ".join(pretty_expr(e) for e in expr.items) + ")"
    if isinstance(expr, ast.EAnnot):
        return f"({pretty_expr(expr.expr)} : {pretty_type(expr.ty)})"
    if isinstance(expr, ast.ERaise):
        return f"(raise {pretty_expr(expr.expr)})"
    if isinstance(expr, ast.EHandle):
        arms = " | ".join(
            f"{pretty_pattern(p)} => {pretty_expr(e)}" for p, e in expr.clauses
        )
        return f"({pretty_expr(expr.expr)} handle {arms})"
    raise AssertionError(f"unknown expression {expr!r}")


def _pretty_app(expr: ast.EApp) -> str:
    fn, arg = expr.fn, expr.arg
    if (
        isinstance(fn, ast.EVar)
        and fn.name in _INFIX
        and isinstance(arg, ast.ETuple)
        and len(arg.items) == 2
    ):
        left = _atomic_expr(arg.items[0])
        right = _atomic_expr(arg.items[1])
        return f"({left} {fn.name} {right})"
    if isinstance(fn, ast.EVar) and fn.name == "~":
        return f"(~ {_atomic_expr(arg)})"
    if isinstance(fn, ast.EVar) and fn.name == "not":
        return f"(not {_atomic_expr(arg)})"
    if (
        isinstance(fn, ast.ECon)
        and fn.name == "::"
        and isinstance(arg, ast.ETuple)
        and len(arg.items) == 2
    ):
        head = _atomic_expr(arg.items[0])
        tail = _atomic_expr(arg.items[1])
        return f"({head} :: {tail})"
    return f"{_atomic_expr(fn)} {_atomic_expr(arg)}"


def _atomic_expr(expr: ast.Expr) -> str:
    text = pretty_expr(expr)
    if text.startswith("(") or text.isidentifier() or text.isdigit():
        return text
    if isinstance(expr, (ast.EVar, ast.ECon, ast.EInt, ast.EBool)):
        return text
    return f"({text})"


# ---------------------------------------------------------------------------
# Declarations
# ---------------------------------------------------------------------------


def pretty_decl(decl: ast.Decl) -> str:
    if isinstance(decl, ast.DVal):
        where = (
            f" : {pretty_type(decl.where_type)}" if decl.where_type else ""
        )
        return f"val {pretty_pattern(decl.pat)}{where} = {pretty_expr(decl.expr)}"
    if isinstance(decl, ast.DFun):
        return "fun " + " and ".join(
            _pretty_binding(b) for b in decl.bindings
        )
    if isinstance(decl, ast.DDatatype):
        tyvars = ""
        if len(decl.tyvars) == 1:
            tyvars = decl.tyvars[0] + " "
        elif decl.tyvars:
            tyvars = "(" + ", ".join(decl.tyvars) + ") "
        cons = " | ".join(
            c.name + (f" of {pretty_type(c.arg)}" if c.arg else "")
            for c in decl.constructors
        )
        return f"datatype {tyvars}{decl.name} = {cons}"
    if isinstance(decl, ast.DTyperef):
        sorts = ", ".join(str(s) for s in decl.sorts)
        clauses = " | ".join(
            f"{c.con} <| {pretty_type(c.ty)}" for c in decl.clauses
        )
        return f"typeref {decl.tycon} of {sorts} with {clauses}"
    if isinstance(decl, ast.DAssert):
        items = " and ".join(
            f"{name} <| {pretty_type(ty)}" for name, ty in decl.items
        )
        return f"assert {items}"
    if isinstance(decl, ast.DTypeAbbrev):
        return f"type {decl.name} = {pretty_type(decl.ty)}"
    if isinstance(decl, ast.DException):
        arg = f" of {pretty_type(decl.arg)}" if decl.arg is not None else ""
        return f"exception {decl.name}{arg}"
    raise AssertionError(f"unknown declaration {decl!r}")


def _pretty_binding(binding: ast.FunBinding) -> str:
    prefix = ""
    if binding.typarams:
        prefix += "(" + ", ".join(binding.typarams) + ")"
    for b in binding.ixparams:
        prefix += f"{{{b.name}:{b.sort}}}"
    clauses = " | ".join(
        f"{binding.name if i else ''}"
        f"{' ' if i else ''}"
        + " ".join(_atomic_pattern(p) for p in clause.params)
        + f" = {pretty_expr(clause.body)}"
        for i, clause in enumerate(binding.clauses)
    )
    # First clause carries the name via the binding header.
    head = f"{prefix}{' ' if prefix else ''}{binding.name} "
    where = (
        f" where {binding.name} <| {pretty_type(binding.where_type)}"
        if binding.where_type is not None
        else ""
    )
    return head + clauses + where


def pretty_program(program: ast.Program) -> str:
    return "\n".join(pretty_decl(d) for d in program.decls) + "\n"
