"""Lexer for DML-lite.

Token kinds:

* ``INT`` — decimal integer literals,
* ``ID`` — alphanumeric identifiers (including constructor names),
* ``TYVAR`` — ``'a``-style type variables,
* keywords (ML's plus ``typeref``, ``assert``, ``where``),
* punctuation and operators, including the paper's ``<|`` annotation
  arrow.

Comments are SML's ``(* ... *)`` and nest.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.lang.errors import LexError
from repro.lang.source import SourceFile, Span

KEYWORDS = frozenset(
    {
        "fun",
        "val",
        "let",
        "in",
        "end",
        "if",
        "then",
        "else",
        "case",
        "of",
        "fn",
        "datatype",
        "typeref",
        "with",
        "assert",
        "and",
        "where",
        "type",
        "exception",
        "raise",
        "handle",
        "andalso",
        "orelse",
        "not",
        "div",
        "mod",
        "true",
        "false",
        "op",
    }
)

#: Multi-character symbols, longest first so maximal munch works.
SYMBOLS = (
    "<|",
    "=>",
    "->",
    "<=",
    ">=",
    "<>",
    "::",
    "/\\",
    "\\/",
    "(",
    ")",
    "[",
    "]",
    "{",
    "}",
    ",",
    ":",
    ";",
    "|",
    "=",
    "<",
    ">",
    "+",
    "-",
    "*",
    "/",
    "~",
    "_",
    ".",
)


@dataclass(frozen=True)
class Token:
    kind: str  # "INT", "ID", "TYVAR", "EOF", a keyword, or a symbol
    text: str
    span: Span

    def __str__(self) -> str:
        return self.text or self.kind


def tokenize(source: SourceFile) -> list[Token]:
    """Tokenize an entire source file; raises :class:`LexError`."""
    text = source.text
    n = len(text)
    pos = 0
    tokens: list[Token] = []

    while pos < n:
        ch = text[pos]

        if ch in " \t\r\n":
            pos += 1
            continue

        if text.startswith("(*", pos):
            pos = _skip_comment(source, pos)
            continue

        if ch.isdigit():
            start = pos
            while pos < n and text[pos].isdigit():
                pos += 1
            tokens.append(Token("INT", text[start:pos], Span(start, pos)))
            continue

        if ch == "'":
            start = pos
            pos += 1
            if pos >= n or not (text[pos].isalpha() or text[pos] == "_"):
                raise LexError("expected type variable after '", Span(start, pos))
            while pos < n and (text[pos].isalnum() or text[pos] == "_"):
                pos += 1
            tokens.append(Token("TYVAR", text[start:pos], Span(start, pos)))
            continue

        if ch.isalpha() or ch == "_" and _is_ident_start(text, pos):
            start = pos
            while pos < n and (text[pos].isalnum() or text[pos] in "_'"):
                pos += 1
            word = text[start:pos]
            kind = word if word in KEYWORDS else "ID"
            tokens.append(Token(kind, word, Span(start, pos)))
            continue

        matched = False
        for symbol in SYMBOLS:
            if text.startswith(symbol, pos):
                tokens.append(Token(symbol, symbol, Span(pos, pos + len(symbol))))
                pos += len(symbol)
                matched = True
                break
        if matched:
            continue

        raise LexError(f"unexpected character {ch!r}", Span(pos, pos + 1))

    tokens.append(Token("EOF", "", Span(n, n)))
    return tokens


def _is_ident_start(text: str, pos: int) -> bool:
    """A lone ``_`` is the wildcard symbol; ``_foo`` is an identifier."""
    return pos + 1 < len(text) and (text[pos + 1].isalnum() or text[pos + 1] == "_")


def _skip_comment(source: SourceFile, pos: int) -> int:
    """Skip a nested ``(* ... *)`` comment starting at ``pos``."""
    text = source.text
    start = pos
    depth = 0
    n = len(text)
    while pos < n:
        if text.startswith("(*", pos):
            depth += 1
            pos += 2
        elif text.startswith("*)", pos):
            depth -= 1
            pos += 2
            if depth == 0:
                return pos
        else:
            pos += 1
    raise LexError("unterminated comment", Span(start, n))
