"""Recursive-descent parser for DML-lite.

The grammar follows Standard ML for the expression fragment and the
paper's concrete syntax for dependent annotations:

* ``{a:sort, b:sort | guard} ty`` — universal quantification (Pi),
* ``[a:sort | guard] ty`` — existential quantification (Sigma),
* ``assert name <| ty and ...``,
* ``typeref 'a list of nat with nil <| ... | :: <| ...``,
* ``fun('a){n:nat} f p = e where f <| ty``.

Index expressions support chained comparisons (``0 <= i < n`` denotes
the conjunction, as in the paper's "transparent abbreviations").
"""

from __future__ import annotations

from repro.indices import sorts as sorts_mod
from repro.indices import terms
from repro.indices.sorts import Sort, SubsetSort
from repro.indices.terms import IConst, IVar, IndexTerm
from repro.lang import ast
from repro.lang.errors import ParseError
from repro.lang.lexer import Token, tokenize
from repro.lang.source import SourceFile, Span

#: Binary comparison tokens usable in both expressions and indices.
_CMP_TOKENS = ("=", "<>", "<", "<=", ">", ">=")

#: Index functions callable with parenthesized arguments.
_INDEX_FUNCTIONS = {
    "min": (terms.imin, 2),
    "max": (terms.imax, 2),
    "abs": (terms.iabs, 1),
    "sgn": (terms.isgn, 1),
    "div": (terms.idiv, 2),
    "mod": (terms.imod, 2),
}

#: Tokens that can never start an expression; the application loop and
#: clause bodies stop on these.
_EXPR_STOPPERS = frozenset(
    {
        "EOF", ")", "]", "}", ",", ";", "|", "=>", "then", "else", "of",
        "in", "end", "where", "and", "fun", "val", "datatype", "typeref",
        "assert", "type", "with", "andalso", "orelse", ":", "handle",
        "exception",
        "=", "<>", "<", "<=", ">", ">=", "+", "-", "*", "div", "mod", "::",
        "->", "<|",
    }
)


class Parser:
    def __init__(self, source: SourceFile) -> None:
        self.source = source
        self.tokens = tokenize(source)
        self.pos = 0

    # -- token utilities -------------------------------------------------

    def peek(self, offset: int = 0) -> Token:
        index = min(self.pos + offset, len(self.tokens) - 1)
        return self.tokens[index]

    def at(self, kind: str) -> bool:
        return self.peek().kind == kind

    def advance(self) -> Token:
        token = self.tokens[self.pos]
        if token.kind != "EOF":
            self.pos += 1
        return token

    def expect(self, kind: str) -> Token:
        token = self.peek()
        if token.kind != kind:
            raise ParseError(
                f"expected {kind!r} but found {token.kind!r}", token.span
            )
        return self.advance()

    def accept(self, kind: str) -> Token | None:
        if self.at(kind):
            return self.advance()
        return None

    def error(self, message: str) -> ParseError:
        return ParseError(message, self.peek().span)

    # -- program ----------------------------------------------------------

    def parse_program(self) -> ast.Program:
        start = self.peek().span
        decls: list[ast.Decl] = []
        while not self.at("EOF"):
            decls.append(self.parse_decl())
        span = start if not decls else start.merge(decls[-1].span)
        return ast.Program(decls, span=span)

    # -- declarations -------------------------------------------------------

    def parse_decl(self) -> ast.Decl:
        token = self.peek()
        if token.kind == "fun":
            return self.parse_fun_decl()
        if token.kind == "val":
            return self.parse_val_decl()
        if token.kind == "datatype":
            return self.parse_datatype_decl()
        if token.kind == "typeref":
            return self.parse_typeref_decl()
        if token.kind == "assert":
            return self.parse_assert_decl()
        if token.kind == "type":
            return self.parse_type_abbrev()
        if token.kind == "exception":
            return self.parse_exception_decl()
        raise self.error(f"expected a declaration, found {token.kind!r}")

    def parse_fun_decl(self) -> ast.DFun:
        start = self.expect("fun").span
        bindings = [self.parse_fun_binding()]
        while self.accept("and"):
            bindings.append(self.parse_fun_binding())
        return ast.DFun(bindings, span=start.merge(bindings[-1].span))

    def parse_fun_binding(self) -> ast.FunBinding:
        start = self.peek().span
        typarams: list[str] = []
        ixparams: list[ast.Binder] = []
        # fun('a,'b){n:nat} name ...
        if self.at("(") and self.peek(1).kind == "TYVAR":
            self.advance()
            typarams.append(self.expect("TYVAR").text)
            while self.accept(","):
                typarams.append(self.expect("TYVAR").text)
            self.expect(")")
        while self.at("{"):
            binders, guard = self.parse_binder_group()
            if guard is not None:
                # Fold a group guard into the last binder's sort.
                last = binders[-1]
                binders[-1] = ast.Binder(
                    last.name,
                    SubsetSort(last.name, last.sort, guard),
                    span=last.span,
                )
            ixparams.extend(binders)
        name = self.expect("ID").text
        clauses = [self.parse_fun_clause()]
        while self.at("|"):
            self.advance()
            other = self.expect("ID")
            if other.text != name:
                raise ParseError(
                    f"clause name {other.text!r} does not match {name!r}",
                    other.span,
                )
            clauses.append(self.parse_fun_clause())
        where_type: ast.SType | None = None
        if self.at("where"):
            self.advance()
            where_name = self.expect("ID")
            if where_name.text != name:
                raise ParseError(
                    f"'where' annotates {where_name.text!r}, expected {name!r}",
                    where_name.span,
                )
            self.expect("<|")
            where_type = self.parse_type()
        end_span = clauses[-1].span if where_type is None else where_type.span
        return ast.FunBinding(
            name, typarams, ixparams, clauses, where_type, span=start.merge(end_span)
        )

    def parse_fun_clause(self) -> ast.Clause:
        start = self.peek().span
        params = [self.parse_atomic_pattern()]
        while not self.at("="):
            params.append(self.parse_atomic_pattern())
        self.expect("=")
        body = self.parse_expr()
        return ast.Clause(params, body, span=start.merge(body.span))

    def parse_val_decl(self) -> ast.DVal:
        start = self.expect("val").span
        pat = self.parse_pattern()
        where_type: ast.SType | None = None
        if self.accept(":"):
            where_type = self.parse_type()
        self.expect("=")
        expr = self.parse_expr()
        return ast.DVal(pat, expr, where_type, span=start.merge(expr.span))

    def parse_datatype_decl(self) -> ast.DDatatype:
        start = self.expect("datatype").span
        tyvars = self.parse_tyvar_seq()
        name = self.expect("ID").text
        self.expect("=")
        constructors = [self.parse_condef()]
        while self.accept("|"):
            constructors.append(self.parse_condef())
        return ast.DDatatype(
            name, tyvars, constructors, span=start.merge(constructors[-1].span)
        )

    def parse_condef(self) -> ast.ConDef:
        token = self.peek()
        if token.kind in {"ID", "::"}:
            self.advance()
        else:
            raise self.error("expected a constructor name")
        arg: ast.SType | None = None
        if self.accept("of"):
            arg = self.parse_type()
        span = token.span if arg is None else token.span.merge(arg.span)
        return ast.ConDef(token.text, arg, span=span)

    def parse_typeref_decl(self) -> ast.DTyperef:
        start = self.expect("typeref").span
        self.parse_tyvar_seq()  # documentation only; arity checked later
        tycon = self.expect("ID").text
        self.expect("of")
        sorts = [self.parse_sort()]
        while self.accept(","):
            sorts.append(self.parse_sort())
        self.expect("with")
        clauses = [self.parse_refclause()]
        while self.accept("|"):
            clauses.append(self.parse_refclause())
        return ast.DTyperef(tycon, sorts, clauses, span=start.merge(clauses[-1].span))

    def parse_refclause(self) -> ast.RefClause:
        token = self.peek()
        if token.kind in {"ID", "::"}:
            self.advance()
        else:
            raise self.error("expected a constructor name in typeref clause")
        self.expect("<|")
        ty = self.parse_type()
        return ast.RefClause(token.text, ty, span=token.span.merge(ty.span))

    def parse_assert_decl(self) -> ast.DAssert:
        start = self.expect("assert").span
        items = [self.parse_assert_item()]
        while self.accept("and"):
            items.append(self.parse_assert_item())
        return ast.DAssert(items, span=start)

    def parse_assert_item(self) -> tuple[str, ast.SType]:
        token = self.peek()
        if token.kind in {"ID", "::", "+", "-", "*", "div", "mod", "=", "<>",
                          "<", "<=", ">", ">=", "~", "not"}:
            self.advance()
        else:
            raise self.error("expected an identifier to assert a type for")
        self.expect("<|")
        ty = self.parse_type()
        return token.text, ty

    def parse_type_abbrev(self) -> ast.DTypeAbbrev:
        start = self.expect("type").span
        name = self.expect("ID").text
        self.expect("=")
        ty = self.parse_type()
        return ast.DTypeAbbrev(name, ty, span=start.merge(ty.span))

    def parse_exception_decl(self) -> ast.DException:
        start = self.expect("exception").span
        name = self.expect("ID")
        arg: ast.SType | None = None
        if self.accept("of"):
            arg = self.parse_type()
        end = arg.span if arg is not None else name.span
        return ast.DException(name.text, arg, span=start.merge(end))

    def parse_tyvar_seq(self) -> list[str]:
        if self.at("TYVAR"):
            return [self.advance().text]
        if self.at("(") and self.peek(1).kind == "TYVAR":
            self.advance()
            names = [self.expect("TYVAR").text]
            while self.accept(","):
                names.append(self.expect("TYVAR").text)
            self.expect(")")
            return names
        return []

    # -- types ---------------------------------------------------------------

    def parse_type(self) -> ast.SType:
        token = self.peek()
        if token.kind == "{":
            binders, guard = self.parse_binder_group()
            body = self.parse_type()
            return ast.STyPi(binders, guard, body, span=token.span.merge(body.span))
        if token.kind == "[":
            binders, guard = self.parse_binder_group()
            body = self.parse_type()
            return ast.STySig(binders, guard, body, span=token.span.merge(body.span))
        return self.parse_arrow_type()

    def parse_binder_group(self) -> tuple[list[ast.Binder], IndexTerm | None]:
        """``{a:sort, b:sort | guard}`` or the ``[...]`` variant."""
        opener = self.advance()
        closer = "}" if opener.kind == "{" else "]"
        binders = [self.parse_binder()]
        guard: IndexTerm | None = None
        while True:
            if self.accept(","):
                binders.append(self.parse_binder())
                continue
            if self.accept("|"):
                guard = self.parse_index_expr()
            break
        self.expect(closer)
        return binders, guard

    def parse_binder(self) -> ast.Binder:
        name_token = self.expect("ID")
        self.expect(":")
        sort = self.parse_sort()
        return ast.Binder(name_token.text, sort, span=name_token.span)

    def parse_sort(self) -> Sort:
        token = self.peek()
        if token.kind == "ID":
            known = sorts_mod.named_sort(token.text)
            if known is None:
                raise ParseError(f"unknown sort {token.text!r}", token.span)
            self.advance()
            return known
        if token.kind == "{":
            self.advance()
            name = self.expect("ID").text
            self.expect(":")
            parent = self.parse_sort()
            self.expect("|")
            prop = self.parse_index_expr()
            self.expect("}")
            return SubsetSort(name, parent, prop)
        raise self.error("expected a sort (int, bool, nat, or {a:sort | b})")

    def parse_arrow_type(self) -> ast.SType:
        dom = self.parse_tuple_type()
        if self.accept("->"):
            cod = self.parse_type()
            return ast.STyArrow(dom, cod, span=dom.span.merge(cod.span))
        return dom

    def parse_tuple_type(self) -> ast.SType:
        first = self.parse_app_type()
        if not self.at("*"):
            return first
        items = [first]
        while self.accept("*"):
            items.append(self.parse_app_type())
        return ast.STyTuple(items, span=first.span.merge(items[-1].span))

    def parse_app_type(self) -> ast.SType:
        ty = self.parse_atomic_type()
        while self.at("ID"):
            name_token = self.advance()
            iargs = self.parse_optional_iargs()
            tyargs = list(ty.items) if isinstance(ty, _TyArgs) else [ty]
            ty = ast.STyCon(
                name_token.text, tyargs, iargs, span=ty.span.merge(name_token.span)
            )
        if isinstance(ty, _TyArgs):
            raise ParseError("dangling type argument list", ty.span)
        return ty

    def parse_atomic_type(self) -> ast.SType:
        token = self.peek()
        if token.kind == "TYVAR":
            self.advance()
            return ast.STyVar(token.text, span=token.span)
        if token.kind == "ID":
            self.advance()
            iargs = self.parse_optional_iargs()
            return ast.STyCon(token.text, [], iargs, span=token.span)
        if token.kind == "(":
            self.advance()
            if self.accept(")"):
                return ast.STyTuple([], span=token.span)
            first = self.parse_type()
            if self.at(","):
                items = [first]
                while self.accept(","):
                    items.append(self.parse_type())
                close = self.expect(")")
                # (ty1, ty2) must be followed by a tycon name.
                return _TyArgs(items, span=token.span.merge(close.span))
            self.expect(")")
            return first
        raise self.error("expected a type")

    def parse_optional_iargs(self) -> list[IndexTerm]:
        """Index arguments directly after a tycon name: ``int(n+1)``."""
        if not self.at("("):
            return []
        self.advance()
        args = [self.parse_index_expr()]
        while self.accept(","):
            args.append(self.parse_index_expr())
        self.expect(")")
        return args

    # -- index expressions ------------------------------------------------

    def parse_index_expr(self) -> IndexTerm:
        return self.parse_index_or()

    def parse_index_or(self) -> IndexTerm:
        left = self.parse_index_and()
        while self.accept("\\/"):
            right = self.parse_index_and()
            left = terms.bor(left, right)
        return left

    def parse_index_and(self) -> IndexTerm:
        left = self.parse_index_not()
        while self.accept("/\\"):
            right = self.parse_index_not()
            left = terms.band(left, right)
        return left

    def parse_index_not(self) -> IndexTerm:
        if self.accept("not"):
            return terms.bnot(self.parse_index_not())
        return self.parse_index_cmp()

    def parse_index_cmp(self) -> IndexTerm:
        """A sum, or a chain of comparisons: ``0 <= i < n`` conjoins."""
        first = self.parse_index_sum()
        if self.peek().kind not in _CMP_TOKENS:
            return first
        props: list[IndexTerm] = []
        left = first
        while self.peek().kind in _CMP_TOKENS:
            op = self.advance().kind
            right = self.parse_index_sum()
            props.append(terms.cmp(op, left, right))
            left = right
        return terms.conj(props)

    def parse_index_sum(self) -> IndexTerm:
        left = self.parse_index_product()
        while self.peek().kind in {"+", "-"}:
            op = self.advance().kind
            right = self.parse_index_product()
            left = terms.iadd(left, right) if op == "+" else terms.isub(left, right)
        return left

    def parse_index_product(self) -> IndexTerm:
        left = self.parse_index_unary()
        while self.peek().kind in {"*", "div", "mod"}:
            op = self.advance().kind
            right = self.parse_index_unary()
            if op == "*":
                left = terms.imul(left, right)
            elif op == "div":
                left = terms.idiv(left, right)
            else:
                left = terms.imod(left, right)
        return left

    def parse_index_unary(self) -> IndexTerm:
        if self.peek().kind in {"-", "~"}:
            self.advance()
            return terms.ineg(self.parse_index_unary())
        return self.parse_index_atom()

    def parse_index_atom(self) -> IndexTerm:
        token = self.peek()
        if token.kind == "INT":
            self.advance()
            return IConst(int(token.text))
        if token.kind == "true":
            self.advance()
            return terms.TRUE
        if token.kind == "false":
            self.advance()
            return terms.FALSE
        if token.kind in {"div", "mod"} and self.peek(1).kind == "(":
            # Function-call syntax for the keyword operators: mod(i, 4).
            self.advance()
            fn, arity = _INDEX_FUNCTIONS[token.kind]
            self.advance()  # "("
            args = [self.parse_index_expr()]
            while self.accept(","):
                args.append(self.parse_index_expr())
            self.expect(")")
            if len(args) != arity:
                raise ParseError(
                    f"{token.kind} expects {arity} argument(s)", token.span
                )
            return fn(*args)
        if token.kind == "ID":
            self.advance()
            if token.text in _INDEX_FUNCTIONS and self.at("("):
                fn, arity = _INDEX_FUNCTIONS[token.text]
                self.advance()
                args = [self.parse_index_expr()]
                while self.accept(","):
                    args.append(self.parse_index_expr())
                self.expect(")")
                if len(args) != arity:
                    raise ParseError(
                        f"{token.text} expects {arity} argument(s)", token.span
                    )
                return fn(*args)
            return IVar(token.text)
        if token.kind == "(":
            self.advance()
            inner = self.parse_index_expr()
            self.expect(")")
            return inner
        raise self.error("expected an index expression")

    # -- patterns ------------------------------------------------------------

    def parse_pattern(self) -> ast.Pattern:
        left = self.parse_applied_pattern()
        if self.accept("::"):
            right = self.parse_pattern()
            return ast.PCon(
                "::",
                ast.PTuple([left, right], span=left.span.merge(right.span)),
                span=left.span.merge(right.span),
            )
        return left

    def parse_applied_pattern(self) -> ast.Pattern:
        """An identifier applied to an atomic pattern is a constructor
        pattern (``SOME(m, x)``); a lone identifier stays a variable
        until name resolution decides."""
        token = self.peek()
        if token.kind == "ID" and self.peek(1).kind in {"(", "ID", "INT", "_",
                                                        "true", "false"}:
            self.advance()
            arg = self.parse_atomic_pattern()
            return ast.PCon(token.text, arg, span=token.span.merge(arg.span))
        return self.parse_atomic_pattern()

    def parse_atomic_pattern(self) -> ast.Pattern:
        token = self.peek()
        if token.kind == "_":
            self.advance()
            return ast.PWild(span=token.span)
        if token.kind == "INT":
            self.advance()
            return ast.PInt(int(token.text), span=token.span)
        if token.kind in {"-", "~"} and self.peek(1).kind == "INT":
            self.advance()
            number = self.advance()
            return ast.PInt(-int(number.text), span=token.span.merge(number.span))
        if token.kind == "true":
            self.advance()
            return ast.PBool(True, span=token.span)
        if token.kind == "false":
            self.advance()
            return ast.PBool(False, span=token.span)
        if token.kind == "ID":
            self.advance()
            return ast.PVar(token.text, span=token.span)
        if token.kind == "(":
            self.advance()
            if self.accept(")"):
                return ast.PTuple([], span=token.span)
            items = [self.parse_pattern()]
            while self.accept(","):
                items.append(self.parse_pattern())
            close = self.expect(")")
            if len(items) == 1:
                return items[0]
            return ast.PTuple(items, span=token.span.merge(close.span))
        raise self.error("expected a pattern")

    # -- expressions -----------------------------------------------------------

    def parse_expr(self) -> ast.Expr:
        token = self.peek()
        if token.kind == "if":
            self.advance()
            cond = self.parse_expr()
            self.expect("then")
            then = self.parse_expr()
            self.expect("else")
            els = self.parse_expr()
            return self._maybe_handle(
                ast.EIf(cond, then, els, span=token.span.merge(els.span))
            )
        if token.kind == "case":
            self.advance()
            scrutinee = self.parse_expr()
            self.expect("of")
            self.accept("|")  # optional leading bar
            clauses = [self.parse_case_clause()]
            while self.accept("|"):
                clauses.append(self.parse_case_clause())
            return self._maybe_handle(
                ast.ECase(
                    scrutinee, clauses,
                    span=token.span.merge(clauses[-1][1].span),
                )
            )
        if token.kind == "let":
            self.advance()
            decls: list[ast.Decl] = []
            while not self.at("in"):
                decls.append(self.parse_decl())
            self.expect("in")
            body = self.parse_let_body()
            end = self.expect("end")
            return self._maybe_handle(
                ast.ELet(decls, body, span=token.span.merge(end.span))
            )
        if token.kind == "fn":
            self.advance()
            param = self.parse_pattern()
            self.expect("=>")
            body = self.parse_expr()
            return self._maybe_handle(
                ast.EFn(param, body, span=token.span.merge(body.span))
            )
        if token.kind == "raise":
            self.advance()
            exn = self.parse_expr()
            return ast.ERaise(exn, span=token.span.merge(exn.span))
        return self._maybe_handle(self.parse_orelse())

    def _maybe_handle(self, expr: ast.Expr) -> ast.Expr:
        """``e handle p => e' | ...`` binds loosest of all operators."""
        if not self.at("handle"):
            return expr
        self.advance()
        self.accept("|")
        clauses = [self.parse_case_clause()]
        while self.accept("|"):
            clauses.append(self.parse_case_clause())
        return ast.EHandle(
            expr, clauses, span=expr.span.merge(clauses[-1][1].span)
        )

    def parse_let_body(self) -> ast.Expr:
        first = self.parse_expr()
        if not self.at(";"):
            return first
        items = [first]
        while self.accept(";"):
            items.append(self.parse_expr())
        return ast.ESeq(items, span=first.span.merge(items[-1].span))

    def parse_case_clause(self) -> tuple[ast.Pattern, ast.Expr]:
        pat = self.parse_pattern()
        self.expect("=>")
        body = self.parse_expr()
        return pat, body

    def parse_orelse(self) -> ast.Expr:
        left = self.parse_andalso()
        while self.accept("orelse"):
            right = self.parse_andalso()
            left = ast.EOrElse(left, right, span=left.span.merge(right.span))
        return left

    def parse_andalso(self) -> ast.Expr:
        left = self.parse_cmp_expr()
        while self.accept("andalso"):
            right = self.parse_cmp_expr()
            left = ast.EAndAlso(left, right, span=left.span.merge(right.span))
        return left

    def parse_cmp_expr(self) -> ast.Expr:
        left = self.parse_cons_expr()
        if self.peek().kind in _CMP_TOKENS:
            op = self.advance().kind
            right = self.parse_cons_expr()
            return _binop(op, left, right)
        return left

    def parse_cons_expr(self) -> ast.Expr:
        left = self.parse_additive()
        if self.accept("::"):
            right = self.parse_cons_expr()  # right associative
            span = left.span.merge(right.span)
            return ast.EApp(
                ast.ECon("::", span=span),
                ast.ETuple([left, right], span=span),
                span=span,
            )
        return left

    def parse_additive(self) -> ast.Expr:
        left = self.parse_multiplicative()
        while self.peek().kind in {"+", "-"}:
            op = self.advance().kind
            right = self.parse_multiplicative()
            left = _binop(op, left, right)
        return left

    def parse_multiplicative(self) -> ast.Expr:
        left = self.parse_unary()
        while self.peek().kind in {"*", "div", "mod"}:
            op = self.advance().kind
            right = self.parse_unary()
            left = _binop(op, left, right)
        return left

    def parse_unary(self) -> ast.Expr:
        token = self.peek()
        if token.kind in {"~", "-"}:
            self.advance()
            arg = self.parse_unary()
            span = token.span.merge(arg.span)
            if isinstance(arg, ast.EInt):
                return ast.EInt(-arg.value, span=span)
            return ast.EApp(ast.EVar("~", span=token.span), arg, span=span)
        if token.kind == "not":
            self.advance()
            arg = self.parse_unary()
            span = token.span.merge(arg.span)
            return ast.EApp(ast.EVar("not", span=token.span), arg, span=span)
        return self.parse_application()

    def parse_application(self) -> ast.Expr:
        fn = self.parse_atom()
        while not self.peek().kind in _EXPR_STOPPERS and self._starts_atom():
            arg = self.parse_atom()
            fn = ast.EApp(fn, arg, span=fn.span.merge(arg.span))
        return fn

    def _starts_atom(self) -> bool:
        return self.peek().kind in {"INT", "ID", "true", "false", "("}

    def parse_atom(self) -> ast.Expr:
        token = self.peek()
        if token.kind == "INT":
            self.advance()
            return ast.EInt(int(token.text), span=token.span)
        if token.kind == "true":
            self.advance()
            return ast.EBool(True, span=token.span)
        if token.kind == "false":
            self.advance()
            return ast.EBool(False, span=token.span)
        if token.kind == "ID":
            self.advance()
            return ast.EVar(token.text, span=token.span)
        if token.kind == "op":
            # SML's `op` turns an infix into a value: `op +`.
            self.advance()
            op_token = self.advance()
            return ast.EVar(op_token.text, span=token.span.merge(op_token.span))
        if token.kind == "(":
            self.advance()
            if self.accept(")"):
                return ast.EUnit(span=token.span)
            first = self.parse_expr()
            if self.at(","):
                items = [first]
                while self.accept(","):
                    items.append(self.parse_expr())
                close = self.expect(")")
                return ast.ETuple(items, span=token.span.merge(close.span))
            if self.at(";"):
                items = [first]
                while self.accept(";"):
                    items.append(self.parse_expr())
                close = self.expect(")")
                return ast.ESeq(items, span=token.span.merge(close.span))
            if self.accept(":"):
                ty = self.parse_type()
                close = self.expect(")")
                return ast.EAnnot(first, ty, span=token.span.merge(close.span))
            self.expect(")")
            return first
        raise self.error(f"expected an expression, found {token.kind!r}")


class _TyArgs(ast.SType):
    """Internal marker for ``(ty1, ty2)`` awaiting a tycon name."""

    def __init__(self, items: list[ast.SType], span: Span) -> None:
        super().__init__(span=span)
        self.items = items


def _binop(op: str, left: ast.Expr, right: ast.Expr) -> ast.Expr:
    span = left.span.merge(right.span)
    return ast.EApp(
        ast.EVar(op, span=span),
        ast.ETuple([left, right], span=span),
        span=span,
    )


def parse_program(text: str, name: str = "<input>") -> ast.Program:
    """Parse a whole program from source text."""
    return Parser(SourceFile(text, name)).parse_program()


def parse_expression(text: str, name: str = "<expr>") -> ast.Expr:
    """Parse a single expression (test helper)."""
    parser = Parser(SourceFile(text, name))
    expr = parser.parse_expr()
    parser.expect("EOF")
    return expr


def parse_type(text: str, name: str = "<type>") -> ast.SType:
    """Parse a single type (test helper)."""
    parser = Parser(SourceFile(text, name))
    ty = parser.parse_type()
    parser.expect("EOF")
    return ty
