"""Diagnostics for every phase of the DML-lite pipeline.

The hierarchy distinguishes *where* an error arose (lexing, parsing, ML
typing, dependent elaboration, constraint solving, evaluation) because
the paper's central conservativity claim depends on the distinction: a
program rejected by :class:`MLTypeError` is not ML-typable at all, while
a program that only trips :class:`UnsolvedConstraint` obligations is
still a perfectly good ML program — it merely keeps its run-time checks.
"""

from __future__ import annotations

from repro.lang.source import DUMMY_SPAN, SourceFile, Span


class DMLError(Exception):
    """Base class for all errors raised by the repro pipeline."""

    def __init__(self, message: str, span: Span = DUMMY_SPAN) -> None:
        super().__init__(message)
        self.message = message
        self.span = span

    def render(self, source: SourceFile | None = None) -> str:
        """Format the error with a source excerpt when available."""
        if source is None or self.span == DUMMY_SPAN:
            return f"{type(self).__name__}: {self.message}"
        head = f"{source.describe(self.span)}: {type(self).__name__}: {self.message}"
        return f"{head}\n{source.excerpt(self.span)}"


class LexError(DMLError):
    """Malformed token in the source text."""


class ParseError(DMLError):
    """Syntactically invalid program."""


class MLTypeError(DMLError):
    """Phase-1 failure: the program is not well-typed in plain ML."""


class ElabError(DMLError):
    """Phase-2 failure: dependent annotations are malformed or
    structurally incompatible with the ML types (e.g. a ``typeref``
    whose constructor types do not erase to the declared ML types)."""


class SortError(ElabError):
    """An index expression is ill-sorted (e.g. boolean used as int)."""


class NonLinearConstraint(ElabError):
    """A generated constraint falls outside linear arithmetic.

    Mirrors Section 3.2: "We currently reject non-linear constraints
    rather than postponing them as hard constraints."
    """


class UnsolvedConstraint(DMLError):
    """A proof obligation the solver could not discharge.

    This is not fatal for compilation: the corresponding access simply
    keeps its run-time check.  It *is* fatal when the user asked for a
    fully-checked elaboration (``require_all=True``).
    """


class EvalError(DMLError):
    """Run-time error raised by the interpreter."""


class BoundsError(EvalError):
    """Array subscript out of bounds (SML's ``Subscript`` exception)."""


class TagError(EvalError):
    """List tag violation, e.g. ``hd nil`` (SML's ``Empty``)."""


class MatchFailure(EvalError):
    """No pattern-match clause applied (SML's ``Match``)."""


class RaisedException(Exception):
    """A DML ``raise`` in flight, carrying the exception value.

    Deliberately *not* a :class:`DMLError`: an uncaught user exception
    escaping the program is a normal outcome the embedder sees, not a
    malfunction of the pipeline.
    """

    def __init__(self, value) -> None:
        super().__init__(f"uncaught exception: {value!r}")
        self.value = value
