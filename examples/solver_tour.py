"""A tour of the constraint solvers (Section 3.2).

Shows the decision backends on hand-built linear systems:

* plain Fourier elimination refutes rationally infeasible systems;
* the gcd tightening rule catches divisibility conflicts the rational
  methods miss (the byte-copy scenario);
* Pugh's Omega test is exact, refuting even the classic dark-shadow
  instance that survives tightening.

Run:  python examples/solver_tour.py
"""

from repro.indices.linear import Atom, LinComb
from repro.solver.backends import backend_names, get_backend
from repro.solver.bruteforce import find_model


def var(name, coeff=1):
    return LinComb.of_var(name, coeff)


def const(value):
    return LinComb.of_const(value)


SYSTEMS = {
    # x >= 1 /\ x <= -1: plainly unsatisfiable.
    "plain contradiction": [
        Atom(">=", var("x") + const(-1)),
        Atom(">=", -var("x") + const(-1)),
    ],
    # 3 <= 2x <= 3: the only solution is x = 3/2 -- integrally empty.
    "parity gap (needs tightening)": [
        Atom(">=", var("x", 2) + const(-3)),
        Atom(">=", var("x", -2) + const(3)),
    ],
    # Pugh's example: rational solutions exist, integer ones do not,
    # and tightening alone cannot see it.
    "Pugh dark shadow (needs Omega)": [
        Atom(">=", var("x", 11) + var("y", 13) + const(-27)),
        Atom(">=", var("x", -11) + var("y", -13) + const(45)),
        Atom(">=", var("x", 7) + var("y", -9) + const(10)),
        Atom(">=", var("x", -7) + var("y", 9) + const(4)),
    ],
    # 0 <= x <= 10: satisfiable; no backend may claim otherwise.
    "satisfiable box": [
        Atom(">=", var("x")),
        Atom(">=", -var("x") + const(10)),
    ],
}


def main() -> None:
    names = backend_names()
    width = max(len(n) for n in SYSTEMS)
    header = f"{'system'.ljust(width)}  " + "  ".join(
        f"{n:>17s}" for n in names
    ) + "  brute-force model"
    print(header)
    print("-" * len(header))
    for label, atoms in SYSTEMS.items():
        cells = []
        for name in names:
            verdict = get_backend(name).unsat(atoms)
            cells.append(f"{'UNSAT' if verdict else 'sat?':>17s}")
        model = find_model(atoms, 8)
        model_text = "none in [-8,8]^n" if model is None else str(model)
        print(f"{label.ljust(width)}  " + "  ".join(cells) + f"  {model_text}")

    print()
    print("Reading the table:")
    print(" * every backend refutes the plain contradiction;")
    print(" * the parity gap needs integer reasoning: fourier (with the")
    print("   paper's gcd rule) and omega catch it, the rational-only")
    print("   backends do not;")
    print(" * the dark-shadow instance defeats tightening too -- only")
    print("   the Omega test (the paper's planned extension) refutes it;")
    print(" * nobody wrongly refutes the satisfiable box (soundness).")


if __name__ == "__main__":
    main()
