"""Knuth-Morris-Pratt matching (Figure 5): partial elimination.

KMP shows both sides of the paper's story.  The matcher's accesses are
all proved safe from shallow annotations.  But the prefix-function
builder walks a chain whose in-bounds-ness rests on a *deep* invariant
of the algorithm (borders strictly shrink), which the index language
cannot express — those two accesses use the explicitly checked subCK,
exactly as in the paper's Figure 5.

Run:  python examples/kmp_matching.py
"""

import random

from repro import api
from repro.eval.interp import Interpreter


def python_find(text: list[int], pattern: list[int]) -> int:
    for i in range(len(text) - len(pattern) + 1):
        if text[i:i + len(pattern)] == pattern:
            return i
    return -1


def main() -> None:
    report = api.check_corpus("kmp")
    print(report.summary())
    print()

    print("check sites:")
    for site_id, site in sorted(report.sites.items()):
        print(f"  {site.op:8s} at {report.source.describe(site.span)}"
              f" -> eliminated")
    print("  (the subCK sites in computePrefixFunction do not appear:")
    print("   they are always-checked by type, not elimination targets)")
    print()

    interp = Interpreter(report.program, report.eliminable_sites(),
                         env=report.env)
    rng = random.Random(98)
    text = [rng.randrange(4) for _ in range(2_000)]
    pattern = [rng.randrange(4) for _ in range(6)]
    got = interp.call("kmpMatch", (text, pattern))
    expected = python_find(text, pattern)
    print(f"kmpMatch found pattern at {got} (naive scan: {expected})")
    assert got == expected
    print(f"  checks performed (subCK): {interp.stats.bound_checks_performed}")
    print(f"  checks eliminated:        {interp.stats.bound_checks_eliminated}")


if __name__ == "__main__":
    main()
