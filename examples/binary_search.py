"""Binary search (Figure 3): check elimination through div and
branch refinement.

The interesting obligation is that the midpoint m = lo + (hi-lo) div 2
stays inside the array.  Proving it needs three ingredients working
together:

* look's `where` annotation bounds lo and hi by the array size;
* the `if hi >= lo` branch contributes its test as a hypothesis
  (singleton booleans);
* the solver eliminates `div 2` with a fresh quotient variable
  (2q <= h-l <= 2q+1).

Run:  python examples/binary_search.py
"""

import random

from repro import api
from repro.bench.harness import figure4
from repro.eval.interp import Interpreter


def main() -> None:
    report = api.check_corpus("bsearch")
    print(report.summary())
    print()

    print("The Figure 4 constraints (regenerated; all involve the")
    print("midpoint expression l + (h - l) div 2):")
    for line in figure4():
        print(" ", line)
    print()

    # Run a search workload and observe zero checked accesses.
    interp = Interpreter(report.program, report.eliminable_sites(),
                         env=report.env)
    rng = random.Random(7)
    arr = sorted(rng.sample(range(10_000), 500))
    keys = [rng.randrange(10_000) for _ in range(200)]
    hits = interp.call("bsearch_all", (arr, keys))
    expected = sum(1 for k in keys if k in set(arr))
    print(f"bsearch_all over {len(keys)} probes: {hits} hits "
          f"(expected {expected})")
    print(f"  bound checks performed:  {interp.stats.bound_checks_performed}")
    print(f"  bound checks eliminated: {interp.stats.bound_checks_eliminated}")
    assert hits == expected
    assert interp.stats.bound_checks_performed == 0


if __name__ == "__main__":
    main()
