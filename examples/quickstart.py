"""Quickstart: check a dependently-typed ML program and watch its
array bound checks disappear.

Run:  python examples/quickstart.py
"""

from repro import api
from repro.compile.elim import plan_elimination
from repro.compile.pycodegen import compile_program
from repro.eval.interp import Interpreter

# Figure 1 of the paper: dot product with dependent types.  The types
# say: v1 has some size p, v2 some size q >= p, the loop index i stays
# within [0, n] for n <= p -- so both sub calls are provably in bounds.
SOURCE = """
fun dotprod(v1, v2) = let
  fun loop(i, n, sum) =
    if i = n then sum
    else loop(i+1, n, sum + sub(v1, i) * sub(v2, i))
  where loop <| {n:nat | n <= p} {i:nat | i <= n} int(i) * int(n) * int -> int
in
  loop(0, length v1, 0)
end
where dotprod <| {p:nat} {q:nat | p <= q} int array(p) * int array(q) -> int
"""


def main() -> None:
    # 1. The static pipeline: ML inference, dependent elaboration,
    #    constraint generation, Fourier solving.
    report = api.check(SOURCE, "quickstart")
    print(report.summary())
    print()

    # 2. Which run-time checks may be eliminated?
    plan = plan_elimination(report)
    print("elimination plan:", plan.summary())
    for site_id, site in sorted(plan.sites.items()):
        state = "UNCHECKED" if site_id in plan.unchecked else "checked"
        print(f"  {site.op} at {report.source.describe(site.span)}: {state}")
    print()

    # 3. Run it in the instrumented interpreter: exact check accounting.
    interp = Interpreter(report.program, plan.unchecked, env=report.env)
    v1 = [1, 2, 3, 4, 5]
    v2 = [10, 20, 30, 40, 50, 60]
    result = interp.call("dotprod", (v1, v2))
    print(f"dotprod({v1}, {v2}) = {result}")
    print(f"  bound checks performed:  {interp.stats.bound_checks_performed}")
    print(f"  bound checks eliminated: {interp.stats.bound_checks_eliminated}")
    print()

    # 4. Compile to Python and inspect the generated loop: the array
    #    accesses are bare a[i] indexing, no checks in sight.
    module = compile_program(report.program, report.env, plan.unchecked)
    print("generated Python:")
    print(module.source)
    assert module.call("dotprod", (v1, v2)) == result


if __name__ == "__main__":
    main()
