"""List length invariants (Section 2.4): typeref, existentials, and
what happens when an annotation is wrong.

Run:  python examples/list_invariants.py
"""

from repro import api
from repro.eval.interp import Interpreter
from repro.eval.values import from_pylist, to_pylist


def main() -> None:
    # reverse / filter / append / zip with length-indexed lists.
    report = api.check_corpus("reverse")
    print(report.summary())
    print()

    interp = Interpreter(report.program, report.eliminable_sites(),
                         env=report.env)
    data = from_pylist([1, 2, 3, 4, 5])
    print("reverse [1..5]      =", to_pylist(interp.call("reverse", data)))
    print("append [1..5] [1..5] =",
          to_pylist(interp.call("append", (data, data))))
    zipped = interp.call("zip", (data, data))
    print("zip [1..5] [1..5]   =", to_pylist(zipped))
    print()

    # A wrong invariant is caught statically: this `reverse` claims to
    # preserve length but drops the head.
    broken = """
fun broken(l) = let
  fun rev(nil, ys) = ys
    | rev(x::xs, ys) = rev(xs, ys)
  where rev <| {m:nat} {n:nat} 'a list(m) * 'a list(n) -> 'a list(m+n)
in
  rev(l, nil)
end
where broken <| {n:nat} 'a list(n) -> 'a list(n)
"""
    report = api.check(broken, "broken")
    print("broken 'reverse' type-checks:", report.all_proved)
    for failure in report.failed_goals:
        print("  unsolved:", failure.goal)
    assert not report.all_proved

    # Tag-check elimination: summing a list's head elements with
    # nth/hd/tl and a length witness runs with zero tag checks.
    report = api.check_corpus("listaccess")
    interp = Interpreter(report.program, report.eliminable_sites(),
                         env=report.env)
    xs = from_pylist(list(range(100)))
    total = interp.call("head_sum", (xs, 50, 0))
    print()
    print(f"head_sum of first 50 of [0..99] = {total} (expected {sum(range(50))})")
    print(f"  tag checks performed:  {interp.stats.tag_checks_performed}")
    print(f"  tag checks eliminated: {interp.stats.tag_checks_eliminated}")
    assert total == sum(range(50))
    assert interp.stats.tag_checks_performed == 0


if __name__ == "__main__":
    main()
