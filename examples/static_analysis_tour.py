"""Beyond check elimination: the analyses the index machinery buys.

The same constraints that prove array accesses safe also power

* index-aware **exhaustiveness** checking (a missing match arm is fine
  exactly when the indices prove it impossible),
* **unreachable-code** detection (the dual direction),
* **counterexample** diagnostics for failed obligations,
* **safety certificates** re-verifiable by an independent solver,

and the exception extension shows they all coexist with effects.

Run:  python examples/static_analysis_tour.py
"""

from repro import api
from repro.compile.certificate import issue_certificate, verify_certificate


def main() -> None:
    # 1. Exhaustiveness: hd on a general list misses nil -- warned;
    #    with a positive length index the nil arm is provably dead.
    sloppy = api.check(
        "fun first(l) = case l of x::xs => x "
        "where first <| {n:nat} int list(n) -> int",
        "sloppy",
    )
    print("sloppy first/1 warnings:")
    for warning in sloppy.warnings:
        print("  ", warning)

    precise = api.check(
        "fun first(l) = case l of x::xs => x "
        "where first <| {n:nat | n >= 1} int list(n) -> int",
        "precise",
    )
    print("precise first/1 warnings:", precise.warnings or "none")
    print()

    # 2. Unreachable code: the impossible arm of a saturating decrement.
    dead = api.check(
        "fun dec(x) = if x < 0 then 0 else x - 1 "
        "where dec <| {i:nat} int(i) -> int",
        "dead",
    )
    print("saturating dec warnings:")
    for warning in dead.warnings:
        print("  ", warning)
    print()

    # 3. Counterexamples: the classic off-by-one, caught with a witness.
    off_by_one = api.check(
        "fun last(a) = sub(a, length a) "
        "where last <| {n:nat} int array(n) -> int",
        "off-by-one",
    )
    print("off-by-one diagnostics:")
    for line in off_by_one.explain():
        print("  ", line)
    print()

    # 4. Exceptions + certification: an exception-raising search whose
    #    bound proofs survive independent re-verification.
    search = api.check(
        """
exception NotFound
fun find(a, key) = let
  fun go(i, n) =
    if i = n then raise NotFound
    else if sub(a, i) = key then i else go(i+1, n)
  where go <| {n:nat | n <= size} {i:nat | i <= n} int(i) * int(n) -> int
in
  go(0, length a)
end
where find <| {size:nat} int array(size) * int -> int
""",
        "find",
    )
    assert search.all_proved
    certificate = issue_certificate(search)
    print(certificate.render())
    result = verify_certificate(certificate, backend="omega")
    print(f"independent verification (omega): "
          f"{'VALID' if result.valid else 'INVALID'} "
          f"({result.checked} obligations)")
    assert result.valid


if __name__ == "__main__":
    main()
